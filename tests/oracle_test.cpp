// Unit tests for the exact planning oracle (src/oracle): exhaustiveness is
// asserted against an independent brute force that enumerates the full
// (per-layer candidate x link vector) product with its own first-fit
// placement replay, and the committed golden fixtures pin the provably
// optimal objective values for the small networks.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/interlayer.hpp"
#include "core/manager.hpp"
#include "engine/glb.hpp"
#include "model/zoo/zoo.hpp"
#include "oracle/oracle.hpp"

namespace rainbow::oracle {
namespace {

using core::Objective;
using model::Network;
using model::make_conv;

arch::AcceleratorSpec spec_kb(count_t kb) {
  return arch::paper_spec(util::kib(kb));
}

Network small_chain() {
  Network net("chain");
  net.add(make_conv("a", 14, 14, 16, 3, 3, 16, 1, 1));
  net.add(make_conv("b", 14, 14, 16, 3, 3, 16, 1, 1));
  net.add(make_conv("c", 14, 14, 16, 3, 3, 16, 1, 1));
  return net;
}

Network mixed_chain() {
  Network net("mixed");
  net.add(make_conv("stem", 28, 28, 8, 3, 3, 16, 2, 1));
  net.add(make_conv("mid", 14, 14, 16, 3, 3, 32, 1, 1));
  net.add(make_conv("down", 14, 14, 32, 3, 3, 32, 2, 1));
  net.add(make_conv("head", 7, 7, 32, 1, 1, 64, 1, 0));
  return net;
}

/// The heuristic baseline the oracle must never lose to: Algorithm 1 plus
/// the greedy Section 5.4 link pass.
core::ExecutionPlan heuristic_plan(const Network& net,
                                   const arch::AcceleratorSpec& spec,
                                   Objective objective, bool interlayer) {
  core::ManagerOptions options;
  options.interlayer_reuse = interlayer;
  const core::MemoryManager manager(spec, options);
  return manager.plan(net, objective);
}

// ---------------------------------------------------------------------------
// Independent brute force: the oracle's search space, enumerated as a plain
// cross product.  For every link vector over the sequential boundaries it
// tries *every* combination of feasible per-layer candidates (policy x
// prefetch under the matching residency state), replays the first-fit
// placement skeleton, and keeps the lexicographic minimum.  Exponential and
// proud of it — only run on tiny chains.
// ---------------------------------------------------------------------------

struct BruteCandidate {
  core::Estimate estimate;
  double primary = 0.0;
  double secondary = 0.0;
};

std::vector<BruteCandidate> brute_candidates(const core::Estimator& estimator,
                                             const model::Layer& layer,
                                             Objective objective,
                                             const core::InterlayerAdjust& adj) {
  std::vector<BruteCandidate> out;
  auto consider = [&](core::Policy policy, bool prefetch) {
    core::Estimate est = estimator.estimate(layer, policy, prefetch, adj);
    if (!est.feasible) {
      return;
    }
    BruteCandidate cand;
    cand.primary = objective == Objective::kAccesses
                       ? static_cast<double>(est.accesses())
                       : est.latency_cycles;
    cand.secondary = objective == Objective::kAccesses
                         ? est.latency_cycles
                         : static_cast<double>(est.accesses());
    cand.estimate = std::move(est);
    out.push_back(std::move(cand));
  };
  for (core::Policy policy : core::kAllPolicies) {
    consider(policy, false);
    consider(policy, true);
  }
  consider(core::Policy::kFallbackTiled, false);
  consider(core::Policy::kFallbackTiled, true);
  return out;
}

/// Recursively assigns candidates to layers under the fixed link vector,
/// replaying placement, and minimizes (primary, secondary) over complete
/// assignments.  `links[b]` covers boundary b -> b+1.
void brute_assign(const core::Estimator& estimator, const Network& net,
                  Objective objective, const std::vector<bool>& links,
                  std::size_t i, const engine::Glb& glb,
                  const std::optional<engine::Glb::Region>& persisted,
                  double p1, double p2, double& best1, double& best2) {
  if (i == net.size()) {
    if (p1 < best1 || (p1 == best1 && p2 < best2)) {
      best1 = p1;
      best2 = p2;
    }
    return;
  }
  const bool in = i > 0 && links[i - 1];
  const bool out = i < links.size() && links[i];
  const core::InterlayerAdjust adjust{.ifmap_resident = in,
                                      .keep_ofmap = out};
  for (const BruteCandidate& cand :
       brute_candidates(estimator, net.layer(i), objective, adjust)) {
    const core::Footprint fp =
        core::planned_footprint(net.layer(i), cand.estimate.choice, adjust);
    engine::Glb next = glb;
    std::optional<engine::Glb::Region> ifmap;
    std::optional<engine::Glb::Region> filter;
    std::optional<engine::Glb::Region> ofmap;
    try {
      if (in) {
        ifmap = persisted;
      } else if (fp.ifmap != 0) {
        ifmap = next.allocate(fp.ifmap, net.layer(i).name());
      }
      if (fp.filter != 0) {
        filter = next.allocate(fp.filter, net.layer(i).name());
      }
      if (fp.ofmap != 0) {
        ofmap = next.allocate(fp.ofmap, net.layer(i).name());
      }
    } catch (const std::runtime_error&) {
      continue;  // this candidate does not place under the inherited state
    }
    if (ifmap) {
      next.release(*ifmap);
    }
    if (filter) {
      next.release(*filter);
    }
    std::optional<engine::Glb::Region> handoff;
    if (ofmap) {
      if (out) {
        handoff = ofmap;
      } else {
        next.release(*ofmap);
      }
    }
    brute_assign(estimator, net, objective, links, i + 1, next, handoff,
                 p1 + cand.primary, p2 + cand.secondary, best1, best2);
  }
}

/// Lexicographic optimum over the full joint space, or +inf when nothing
/// completes (never the case for the chains used here).
PlanCost brute_force_optimum(const Network& net,
                             const arch::AcceleratorSpec& spec,
                             Objective objective, bool interlayer) {
  const core::Estimator estimator(spec);
  double best1 = std::numeric_limits<double>::infinity();
  double best2 = std::numeric_limits<double>::infinity();
  const std::size_t boundaries = net.size() > 0 ? net.size() - 1 : 0;
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << boundaries);
       ++mask) {
    std::vector<bool> links(boundaries, false);
    bool allowed = true;
    for (std::size_t b = 0; b < boundaries; ++b) {
      links[b] = (mask >> b) & 1;
      if (links[b] && !(interlayer && net.is_sequential_boundary(b))) {
        allowed = false;
      }
    }
    if (!allowed) {
      continue;
    }
    engine::Glb glb(spec.glb_elems());
    brute_assign(estimator, net, objective, links, 0, glb, std::nullopt, 0.0,
                 0.0, best1, best2);
  }
  return PlanCost{best1, best2};
}

// ---------------------------------------------------------------------------

TEST(Oracle, MatchesBruteForceOnSmallChains) {
  for (const Network& net : {small_chain(), mixed_chain()}) {
    for (count_t kb : {32u, 64u}) {
      for (Objective objective : {Objective::kAccesses, Objective::kLatency}) {
        const arch::AcceleratorSpec spec = spec_kb(kb);
        const OraclePlanner planner(spec);
        const OracleResult result = planner.plan(net, objective);
        const PlanCost brute = brute_force_optimum(net, spec, objective,
                                                   /*interlayer=*/true);
        ASSERT_TRUE(result.exact) << net.name() << " @ " << kb;
        EXPECT_DOUBLE_EQ(result.best_cost.primary, brute.primary)
            << net.name() << " @ " << kb << " kB, "
            << core::to_string(objective);
        EXPECT_DOUBLE_EQ(result.best_cost.secondary, brute.secondary)
            << net.name() << " @ " << kb << " kB, "
            << core::to_string(objective);
        // The returned plan must actually achieve the reported optimum.
        EXPECT_DOUBLE_EQ(plan_cost(result.plan).primary,
                         result.best_cost.primary);
      }
    }
  }
}

TEST(Oracle, MatchesBruteForceWithoutInterlayer) {
  const Network net = small_chain();
  const arch::AcceleratorSpec spec = spec_kb(64);
  OracleOptions options;
  options.interlayer = false;
  const OraclePlanner planner(spec, options);
  const OracleResult result = planner.plan(net, Objective::kAccesses);
  const PlanCost brute =
      brute_force_optimum(net, spec, Objective::kAccesses, false);
  ASSERT_TRUE(result.exact);
  EXPECT_DOUBLE_EQ(result.best_cost.primary, brute.primary);
}

TEST(Oracle, NeverWorseThanAlgorithmOne) {
  for (const char* name : {"resnet18", "mobilenet"}) {
    const Network net = model::zoo::by_name(name);
    for (count_t kb : {64u, 256u}) {
      for (Objective objective : {Objective::kAccesses, Objective::kLatency}) {
        const arch::AcceleratorSpec spec = spec_kb(kb);
        const OraclePlanner planner(spec);
        const OracleResult result = planner.plan(net, objective);
        const core::ExecutionPlan heuristic =
            heuristic_plan(net, spec, objective, /*interlayer=*/true);
        EXPECT_LE(result.best_cost.primary, plan_cost(heuristic).primary)
            << name << " @ " << kb << " kB, " << core::to_string(objective);
        EXPECT_GE(optimality_gap(plan_cost(heuristic).primary,
                                 result.best_cost.primary),
                  0.0);
      }
    }
  }
}

TEST(Oracle, MatchesHeterogeneousWhenInterlayerOff) {
  // Without links, layers are independent and Algorithm 1's per-layer
  // lexicographic minimum IS the global optimum; the oracle must agree
  // exactly (it prunes everything at the root).
  const Network net = model::zoo::resnet18();
  const arch::AcceleratorSpec spec = spec_kb(64);
  OracleOptions options;
  options.interlayer = false;
  const OraclePlanner planner(spec, options);
  const OracleResult result = planner.plan(net, Objective::kAccesses);
  const core::Analyzer analyzer(spec);
  const core::ExecutionPlan het =
      analyzer.heterogeneous(net, Objective::kAccesses);
  ASSERT_TRUE(result.exact);
  EXPECT_DOUBLE_EQ(result.best_cost.primary, plan_cost(het).primary);
  EXPECT_DOUBLE_EQ(result.best_cost.secondary, plan_cost(het).secondary);
}

TEST(Oracle, EmptyNetworkIsTriviallyExact) {
  const Network net("empty");
  const OraclePlanner planner(spec_kb(64));
  const OracleResult result = planner.plan(net, Objective::kAccesses);
  EXPECT_TRUE(result.exact);
  EXPECT_EQ(result.best_cost.primary, 0.0);
  EXPECT_EQ(result.nodes_expanded, 0u);
}

TEST(Oracle, NodeBudgetDegradesGracefully) {
  // One expandable node is not a search; the result must still be a valid
  // bounded-suboptimal answer: no worse than the heuristic seed, with an
  // admissible lower bound and the exhaustion flagged.
  const Network net = model::zoo::mnasnet();
  const arch::AcceleratorSpec spec = spec_kb(256);
  OracleOptions options;
  options.node_budget = 1;
  const OraclePlanner planner(spec, options);
  const OracleResult result = planner.plan(net, Objective::kAccesses);
  const core::ExecutionPlan heuristic =
      heuristic_plan(net, spec, Objective::kAccesses, /*interlayer=*/true);
  EXPECT_FALSE(result.exact);
  EXPECT_LE(result.best_cost.primary, plan_cost(heuristic).primary);
  EXPECT_LE(result.lower_bound, result.best_cost.primary);
  EXPECT_GT(result.lower_bound, 0.0);
}

TEST(Oracle, BudgetedCostNeverBelowExactOptimum) {
  // The budget can only lose improvements, never invent them.
  const Network net = small_chain();
  const arch::AcceleratorSpec spec = spec_kb(64);
  const OracleResult exact = OraclePlanner(spec).plan(net, Objective::kAccesses);
  OracleOptions options;
  options.node_budget = 2;
  const OracleResult bounded =
      OraclePlanner(spec, options).plan(net, Objective::kAccesses);
  EXPECT_GE(bounded.best_cost.primary, exact.best_cost.primary);
  EXPECT_LE(bounded.lower_bound, exact.best_cost.primary);
}

TEST(Oracle, ThrowsWhenALayerCannotExecute) {
  // 256 bytes is smaller than any working set of this layer — even the
  // fallback tiler has nothing that fits (same setup the Analyzer's own
  // infeasibility test uses).
  arch::AcceleratorSpec micro = spec_kb(64);
  micro.glb_bytes = 256;
  Network net("giant");
  net.add(make_conv("huge", 224, 224, 64, 3, 3, 128, 1, 1));
  const OraclePlanner planner(micro);
  EXPECT_THROW(planner.plan(net, Objective::kAccesses), std::runtime_error);
}

TEST(Oracle, GoldenOptimalValues) {
  // Committed provably optimal objective values (tests/data/oracle_golden.txt,
  // generated by `rainbow_oracle --small-set --json`).  A planner or
  // estimator change that shifts any of these must update the fixture —
  // knowingly.
  std::ifstream in(std::string(RAINBOW_SOURCE_DIR) +
                   "/tests/data/oracle_golden.txt");
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::size_t cases = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream fields(line);
    std::string model_name, objective_name;
    count_t kb = 0;
    double optimal = 0.0;
    ASSERT_TRUE(fields >> model_name >> kb >> objective_name >> optimal)
        << line;
    const Objective objective = objective_name == "latency"
                                    ? Objective::kLatency
                                    : Objective::kAccesses;
    const OraclePlanner planner(spec_kb(kb));
    const OracleResult result =
        planner.plan(model::zoo::by_name(model_name), objective);
    ASSERT_TRUE(result.exact) << model_name << " @ " << kb;
    EXPECT_DOUBLE_EQ(result.best_cost.primary, optimal)
        << model_name << " @ " << kb << " kB, " << objective_name;
    ++cases;
  }
  EXPECT_GE(cases, 8u);
}

}  // namespace
}  // namespace rainbow::oracle
