// Property sweeps over accelerator geometries beyond the paper's default:
// rectangular PE arrays, data widths, DRAM bandwidths, and finite on-chip
// bandwidth.  The invariants of the estimator/engine/analyzer stack must
// hold on all of them.
#include <gtest/gtest.h>

#include <tuple>

#include "core/manager.hpp"
#include "engine/engine.hpp"
#include "model/zoo/zoo.hpp"
#include "scalesim/simulator.hpp"

namespace rainbow {
namespace {

using core::Objective;

// (pe_rows, pe_cols, width_bits, dram B/cyc, sram B/cyc)
using SpecParam = std::tuple<int, int, int, int, int>;

arch::AcceleratorSpec make_spec(const SpecParam& p, count_t glb_kb = 128) {
  const auto [rows, cols, width, dram_bw, sram_bw] = p;
  arch::AcceleratorSpec spec = arch::paper_spec(util::kib(glb_kb));
  spec.pe_rows = rows;
  spec.pe_cols = cols;
  spec.ops_per_cycle = 2 * rows * cols;  // one MAC per PE per cycle-pair
  spec.data_width_bits = width;
  spec.dram_bytes_per_cycle = dram_bw;
  spec.sram_bytes_per_cycle = sram_bw;
  return spec;
}

class SpecGridTest : public ::testing::TestWithParam<SpecParam> {};

TEST_P(SpecGridTest, SpecValidatesAndDerivesRates) {
  const auto spec = make_spec(GetParam());
  EXPECT_NO_THROW(spec.validate());
  EXPECT_GT(spec.elements_per_cycle(), 0.0);
  EXPECT_GT(spec.effective_macs_per_cycle(), 0.0);
  EXPECT_LE(spec.effective_macs_per_cycle(), spec.macs_per_cycle());
}

TEST_P(SpecGridTest, PlansStayFeasibleAndExecutable) {
  const auto spec = make_spec(GetParam());
  const core::MemoryManager manager(spec);
  const engine::Engine engine(spec);
  const auto net = model::zoo::mobilenet();
  for (Objective obj : {Objective::kAccesses, Objective::kLatency}) {
    const auto plan = manager.plan(net, obj);
    EXPECT_TRUE(plan.feasible());
    const auto exec = engine.execute_plan(plan, net);
    EXPECT_EQ(exec.total_accesses, plan.total_accesses());
  }
}

TEST_P(SpecGridTest, HetStillDominatesHom) {
  const auto spec = make_spec(GetParam());
  const core::MemoryManager manager(spec);
  const auto net = model::zoo::resnet18();
  EXPECT_LE(manager.plan(net, Objective::kAccesses).total_accesses(),
            manager.plan_homogeneous(net, Objective::kAccesses).total_accesses());
}

TEST_P(SpecGridTest, BaselineSimulatorHandlesGeometry) {
  const auto spec = make_spec(GetParam());
  const scalesim::Simulator sim(spec,
                                scalesim::BufferPartition{.ifmap_fraction = 0.5});
  const auto run = sim.run(model::zoo::mobilenetv2());
  EXPECT_GT(run.total_accesses, 0u);
  EXPECT_GT(run.total_cycles, 0u);
  for (const auto& layer : run.layers) {
    EXPECT_LE(layer.utilization, 1.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, SpecGridTest,
    ::testing::Values(SpecParam{16, 16, 8, 16, 0},    // the paper's default
                      SpecParam{8, 32, 8, 16, 0},     // wide rectangular
                      SpecParam{32, 8, 8, 16, 0},     // tall rectangular
                      SpecParam{8, 8, 16, 32, 0},     // small array, 16-bit
                      SpecParam{16, 16, 32, 64, 0},   // 32-bit
                      SpecParam{16, 16, 8, 4, 0},     // starved DRAM
                      SpecParam{16, 16, 8, 16, 512},  // exactly-fed SRAM
                      SpecParam{16, 16, 8, 16, 128}), // starved SRAM
    [](const auto& info) {
      // NOTE: no structured bindings here — the commas inside `auto [...]`
      // are not protected from the INSTANTIATE macro's argument splitting.
      return std::to_string(std::get<0>(info.param)) + "x" +
             std::to_string(std::get<1>(info.param)) + "_w" +
             std::to_string(std::get<2>(info.param)) + "_d" +
             std::to_string(std::get<3>(info.param)) + "_s" +
             std::to_string(std::get<4>(info.param));
    });

TEST(OnchipBandwidth, UnlimitedByDefault) {
  const auto spec = arch::paper_spec(util::kib(64));
  EXPECT_FALSE(spec.sram_bandwidth_limited());
  EXPECT_DOUBLE_EQ(spec.effective_macs_per_cycle(), spec.macs_per_cycle());
}

TEST(OnchipBandwidth, ThrottlesComputeBelowDemand) {
  arch::AcceleratorSpec spec = arch::paper_spec(util::kib(64));
  // 256 MACs/cycle need 512 operand bytes at 8-bit.
  spec.sram_bytes_per_cycle = 512;
  EXPECT_DOUBLE_EQ(spec.effective_macs_per_cycle(), 256.0);
  spec.sram_bytes_per_cycle = 128;
  EXPECT_DOUBLE_EQ(spec.effective_macs_per_cycle(), 64.0);
}

TEST(OnchipBandwidth, LatencyDegradesMonotonically) {
  const auto net = model::zoo::mobilenet();
  double prev = 0.0;
  for (double bw : {0.0, 512.0, 256.0, 128.0}) {
    arch::AcceleratorSpec spec = arch::paper_spec(util::kib(256));
    spec.sram_bytes_per_cycle = bw;
    const core::MemoryManager manager(spec);
    const double latency =
        manager.plan(net, Objective::kLatency).total_latency_cycles();
    if (prev != 0.0) {
      EXPECT_GE(latency, prev - 1e-6) << bw;
    }
    prev = latency;
  }
}

}  // namespace
}  // namespace rainbow
