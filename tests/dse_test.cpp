// Tests for the design-space-exploration module: sweep grids, parallel
// determinism, Pareto fronts, and the sizing recommendations.
#include <gtest/gtest.h>

#include "dse/pareto.hpp"
#include "dse/sweep.hpp"
#include "model/zoo/zoo.hpp"

namespace rainbow::dse {
namespace {

SweepConfig small_config() {
  SweepConfig config;
  config.glb_bytes = {util::kib(64), util::kib(256), util::kib(1024)};
  return config;
}

TEST(Sweep, ValidatesAxes) {
  SweepConfig config;
  EXPECT_THROW(config.validate(), std::invalid_argument);  // empty glb axis
  config.glb_bytes = {util::kib(64)};
  config.data_width_bits = {12};
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.data_width_bits = {8};
  config.batch_sizes = {0};
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.batch_sizes = {1};
  EXPECT_NO_THROW(config.validate());
}

TEST(Sweep, PointCountMatchesGrid) {
  SweepConfig config = small_config();
  config.data_width_bits = {8, 16};
  config.objectives = {core::Objective::kAccesses, core::Objective::kLatency};
  config.with_interlayer = true;
  EXPECT_EQ(config.point_count(), 3u * 2 * 1 * 2 * 2);
  const auto points = run_sweep(model::zoo::mobilenet(), config);
  EXPECT_EQ(points.size(), config.point_count());
}

TEST(Sweep, DeterministicAcrossThreadCounts) {
  const auto net = model::zoo::mobilenetv2();
  const SweepConfig config = small_config();
  const auto serial = run_sweep(net, config, 1);
  const auto parallel = run_sweep(net, config, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].glb_bytes, parallel[i].glb_bytes);
    EXPECT_EQ(serial[i].accesses, parallel[i].accesses);
    EXPECT_DOUBLE_EQ(serial[i].latency_cycles, parallel[i].latency_cycles);
  }
}

TEST(Sweep, AccessesMonotoneInGlb) {
  const auto points = run_sweep(model::zoo::resnet18(), small_config());
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_LE(points[i].accesses, points[i - 1].accesses);
  }
}

TEST(Sweep, InterlayerAxisProducesBothVariants) {
  SweepConfig config;
  config.glb_bytes = {util::kib(1024)};
  config.with_interlayer = true;
  const auto points = run_sweep(model::zoo::mnasnet(), config);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_FALSE(points[0].interlayer);
  EXPECT_TRUE(points[1].interlayer);
  EXPECT_LT(points[1].accesses, points[0].accesses);
  EXPECT_GT(points[1].interlayer_coverage, 0.8);
}

TEST(Sweep, PerImageMetricsDivideByBatch) {
  SweepConfig config;
  config.glb_bytes = {util::kib(256)};
  config.batch_sizes = {4};
  const auto points = run_sweep(model::zoo::googlenet(), config);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_DOUBLE_EQ(points[0].access_mb_per_image(), points[0].access_mb / 4);
  EXPECT_DOUBLE_EQ(points[0].latency_per_image(),
                   points[0].latency_cycles / 4);
}

TEST(Pareto, FrontDropsDominatedPoints) {
  std::vector<SweepPoint> points(3);
  points[0].access_mb = 10;
  points[0].latency_cycles = 10;
  points[1].access_mb = 5;
  points[1].latency_cycles = 20;
  points[2].access_mb = 12;   // dominated by points[0]
  points[2].latency_cycles = 11;
  const auto front = pareto_front(
      points, [](const SweepPoint& p) { return p.access_mb; },
      [](const SweepPoint& p) { return p.latency_cycles; });
  ASSERT_EQ(front.size(), 2u);
  EXPECT_EQ(front[0], 0u);
  EXPECT_EQ(front[1], 1u);
}

TEST(Pareto, DuplicatePointsBothSurvive) {
  std::vector<SweepPoint> points(2);
  points[0].access_mb = points[1].access_mb = 5;
  points[0].latency_cycles = points[1].latency_cycles = 5;
  const auto front = pareto_front(
      points, [](const SweepPoint& p) { return p.access_mb; },
      [](const SweepPoint& p) { return p.latency_cycles; });
  EXPECT_EQ(front.size(), 2u);
}

TEST(Pareto, SmallestGlbWithinSlack) {
  const auto points = run_sweep(model::zoo::mobilenetv2(), small_config());
  const auto pick = smallest_glb_within(points, 0.05);
  ASSERT_TRUE(pick.has_value());
  // MobileNetV2's Het accesses are nearly flat: the smallest buffer wins.
  EXPECT_EQ(pick->glb_bytes, util::kib(64));
  EXPECT_FALSE(smallest_glb_within({}, 0.05).has_value());
}

TEST(Pareto, CheapestUnderLatencyBudget) {
  const auto points = run_sweep(model::zoo::mobilenet(), small_config());
  double loosest = 0.0;
  for (const auto& p : points) {
    loosest = std::max(loosest, p.latency_cycles);
  }
  const auto pick = cheapest_under_latency(points, loosest);
  ASSERT_TRUE(pick.has_value());
  for (const auto& p : points) {
    if (p.latency_cycles <= loosest) {
      EXPECT_LE(pick->energy_mj, p.energy_mj);
    }
  }
  EXPECT_FALSE(cheapest_under_latency(points, 0.0).has_value());
}

TEST(Pareto, FrontIsActuallyNonDominated) {
  SweepConfig config = small_config();
  config.objectives = {core::Objective::kAccesses, core::Objective::kLatency};
  const auto points = run_sweep(model::zoo::resnet18(), config);
  const auto front = pareto_front(
      points, [](const SweepPoint& p) { return p.access_mb; },
      [](const SweepPoint& p) { return p.latency_cycles; });
  ASSERT_FALSE(front.empty());
  for (std::size_t i : front) {
    for (const auto& q : points) {
      const bool dominates = q.access_mb <= points[i].access_mb &&
                             q.latency_cycles <= points[i].latency_cycles &&
                             (q.access_mb < points[i].access_mb ||
                              q.latency_cycles < points[i].latency_cycles);
      EXPECT_FALSE(dominates);
    }
  }
}

}  // namespace
}  // namespace rainbow::dse
