// Unit tests for the GLB region allocator.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "engine/glb.hpp"

namespace rainbow::engine {
namespace {

TEST(Glb, ZeroCapacityThrows) { EXPECT_THROW(Glb(0), std::invalid_argument); }

TEST(Glb, AllocatesSequentially) {
  Glb glb(100);
  const auto a = glb.allocate(40, "a");
  const auto b = glb.allocate(60, "b");
  EXPECT_EQ(a.offset, 0u);
  EXPECT_EQ(b.offset, 40u);
  EXPECT_EQ(glb.used(), 100u);
  EXPECT_EQ(glb.free_elems(), 0u);
}

TEST(Glb, OverflowThrows) {
  Glb glb(100);
  (void)glb.allocate(80, "a");
  EXPECT_THROW(glb.allocate(30, "b"), std::runtime_error);
}

TEST(Glb, ExhaustionMessageNamesRequestFreeAndLargestHole) {
  Glb glb(100);
  (void)glb.allocate(80, "a");
  try {
    (void)glb.allocate(30, "conv1/filter");
    FAIL() << "allocation past capacity must throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("cannot allocate 30"), std::string::npos) << what;
    EXPECT_NE(what.find("conv1/filter"), std::string::npos) << what;
    EXPECT_NE(what.find("20 free of 100"), std::string::npos) << what;
    EXPECT_NE(what.find("largest free hole 20"), std::string::npos) << what;
  }
}

TEST(Glb, FragmentationMessageShowsHoleSmallerThanTotalFree) {
  // Two 20-element holes around a surviving region: 40 elements free in
  // total, but nothing contiguous for a 30-element request.  The message
  // must expose the distinction (free >= requested, hole < requested).
  Glb glb(100);
  const auto a = glb.allocate(20, "a");
  (void)glb.allocate(60, "b");
  const auto c = glb.allocate(20, "c");
  glb.release(a);
  glb.release(c);
  try {
    (void)glb.allocate(30, "d");
    FAIL() << "fragmented allocation must throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("40 free of 100"), std::string::npos) << what;
    EXPECT_NE(what.find("largest free hole 20"), std::string::npos) << what;
  }
}

TEST(Glb, ZeroSizeAllocationThrows) {
  Glb glb(100);
  EXPECT_THROW(glb.allocate(0, "z"), std::invalid_argument);
}

TEST(Glb, ReleaseMakesSpaceAvailable) {
  Glb glb(100);
  const auto a = glb.allocate(80, "a");
  glb.release(a);
  EXPECT_EQ(glb.used(), 0u);
  const auto b = glb.allocate(100, "b");
  EXPECT_EQ(b.offset, 0u);
}

TEST(Glb, CoalescesAdjacentFreeRanges) {
  Glb glb(100);
  const auto a = glb.allocate(30, "a");
  const auto b = glb.allocate(30, "b");
  const auto c = glb.allocate(40, "c");
  // Free middle then first: the two ranges must merge so a 60-element
  // region fits at the front.
  glb.release(b);
  glb.release(a);
  const auto d = glb.allocate(60, "d");
  EXPECT_EQ(d.offset, 0u);
  glb.release(c);
  glb.release(d);
  EXPECT_EQ(glb.free_elems(), 100u);
}

TEST(Glb, CoalescesWithFollowingRange) {
  Glb glb(100);
  const auto a = glb.allocate(30, "a");
  const auto b = glb.allocate(30, "b");
  glb.release(a);
  glb.release(b);  // merges backwards into a's range
  const auto c = glb.allocate(60, "c");
  EXPECT_EQ(c.offset, 0u);
}

TEST(Glb, PeakTracksHighWaterMark) {
  Glb glb(100);
  const auto a = glb.allocate(70, "a");
  glb.release(a);
  (void)glb.allocate(20, "b");
  EXPECT_EQ(glb.used(), 20u);
  EXPECT_EQ(glb.peak_used(), 70u);
}

TEST(Glb, DoubleFreeThrows) {
  Glb glb(100);
  const auto a = glb.allocate(10, "a");
  glb.release(a);
  EXPECT_THROW(glb.release(a), std::invalid_argument);
}

TEST(Glb, UnknownRegionThrows) {
  Glb glb(100);
  Glb::Region bogus{5, 10};
  EXPECT_THROW(glb.release(bogus), std::invalid_argument);
}

TEST(Glb, ResetRestoresFullCapacity) {
  Glb glb(100);
  (void)glb.allocate(60, "a");
  glb.reset();
  EXPECT_EQ(glb.used(), 0u);
  const auto b = glb.allocate(100, "b");
  EXPECT_EQ(b.offset, 0u);
}

TEST(Glb, FragmentationIsVisible) {
  Glb glb(100);
  const auto a = glb.allocate(40, "a");
  const auto b = glb.allocate(20, "b");
  (void)glb.allocate(40, "c");
  glb.release(a);
  glb.release(b);  // coalesces into one 60-element hole at the front
  const auto d = glb.allocate(60, "d");
  EXPECT_EQ(d.offset, 0u);
}

}  // namespace
}  // namespace rainbow::engine
