// Unit tests for ExecutionPlan aggregation: totals, unit conversion,
// coverage metrics, and feasibility.
#include <gtest/gtest.h>

#include "core/plan.hpp"
#include "model/network.hpp"

namespace rainbow::core {
namespace {

using model::make_conv;
using model::make_projection;

arch::AcceleratorSpec spec() { return arch::paper_spec(util::kib(64)); }

LayerAssignment assignment(std::size_t index, count_t accesses, double latency,
                           bool prefetch = false, bool feasible = true) {
  LayerAssignment a;
  a.layer_index = index;
  a.estimate.choice.prefetch = prefetch;
  a.estimate.traffic.ifmap_reads = accesses;
  a.estimate.latency_cycles = latency;
  a.estimate.compute_cycles = latency / 2;
  a.estimate.feasible = feasible;
  return a;
}

TEST(Plan, TotalsSumOverLayers) {
  ExecutionPlan plan("test", "net", spec(), Objective::kAccesses);
  plan.add(assignment(0, 100, 10.0));
  plan.add(assignment(1, 200, 30.0));
  EXPECT_EQ(plan.total_accesses(), 300u);
  EXPECT_DOUBLE_EQ(plan.total_latency_cycles(), 40.0);
  EXPECT_DOUBLE_EQ(plan.total_compute_cycles(), 20.0);
}

TEST(Plan, ByteConversionUsesElementWidth) {
  arch::AcceleratorSpec s = spec();
  s.data_width_bits = 16;
  ExecutionPlan plan("test", "net", s, Objective::kAccesses);
  plan.add(assignment(0, 1024 * 1024, 1.0));
  EXPECT_EQ(plan.total_access_bytes(), 2u * 1024 * 1024);
  EXPECT_DOUBLE_EQ(plan.total_access_mb(), 2.0);
}

TEST(Plan, PrefetchCoverage) {
  ExecutionPlan plan("test", "net", spec(), Objective::kLatency);
  plan.add(assignment(0, 1, 1.0, /*prefetch=*/true));
  plan.add(assignment(1, 1, 1.0, /*prefetch=*/false));
  plan.add(assignment(2, 1, 1.0, /*prefetch=*/true));
  plan.add(assignment(3, 1, 1.0, /*prefetch=*/true));
  EXPECT_DOUBLE_EQ(plan.prefetch_coverage(), 0.75);
}

TEST(Plan, EmptyPlanCoverageIsZero) {
  const ExecutionPlan plan("test", "net", spec(), Objective::kAccesses);
  EXPECT_DOUBLE_EQ(plan.prefetch_coverage(), 0.0);
  EXPECT_EQ(plan.total_accesses(), 0u);
}

TEST(Plan, InterlayerCoverage) {
  ExecutionPlan plan("test", "net", spec(), Objective::kAccesses);
  LayerAssignment a = assignment(0, 1, 1.0);
  a.ofmap_stays_in_glb = true;
  plan.add(a);
  plan.add(assignment(1, 1, 1.0));
  EXPECT_EQ(plan.interlayer_links(), 1u);
  EXPECT_DOUBLE_EQ(plan.interlayer_coverage(4), 0.25);
  EXPECT_DOUBLE_EQ(plan.interlayer_coverage(0), 0.0);
}

TEST(Plan, FeasibilityRequiresEveryLayer) {
  ExecutionPlan plan("test", "net", spec(), Objective::kAccesses);
  plan.add(assignment(0, 1, 1.0));
  EXPECT_TRUE(plan.feasible());
  plan.add(assignment(1, 1, 1.0, false, /*feasible=*/false));
  EXPECT_FALSE(plan.feasible());
}

TEST(Plan, AccessorsAndMetadata) {
  ExecutionPlan plan("Het", "ResNet18", spec(), Objective::kLatency);
  EXPECT_EQ(plan.scheme(), "Het");
  EXPECT_EQ(plan.model(), "ResNet18");
  EXPECT_EQ(plan.objective(), Objective::kLatency);
  EXPECT_EQ(std::string(to_string(Objective::kLatency)), "latency");
  EXPECT_EQ(std::string(to_string(Objective::kAccesses)), "accesses");
}

TEST(SequentialBoundaries, CountsTrunkEdgesOnly) {
  model::Network net("n");
  net.add(make_conv("a", 8, 8, 3, 3, 3, 4, 1, 1));
  net.add(make_conv("b", 8, 8, 4, 3, 3, 4, 1, 1));
  net.add(make_conv("c", 8, 8, 4, 3, 3, 4, 1, 1));
  EXPECT_EQ(sequential_boundaries(net), 2u);
  net.add_branch(make_projection("p", 8, 8, 3, 4, 1), 0);
  // c -> p is a branch boundary; a->b, b->c remain.
  EXPECT_EQ(sequential_boundaries(net), 2u);
}

}  // namespace
}  // namespace rainbow::core
