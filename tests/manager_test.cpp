// Unit tests for the MemoryManager facade (the paper's Figure 4 flow).
#include <gtest/gtest.h>

#include "core/manager.hpp"
#include "model/zoo/zoo.hpp"

namespace rainbow::core {
namespace {

arch::AcceleratorSpec spec_kb(count_t kb) { return arch::paper_spec(util::kib(kb)); }

TEST(Manager, PlanMatchesAnalyzerHet) {
  const MemoryManager manager(spec_kb(64));
  const auto net = model::zoo::mobilenet();
  const ExecutionPlan plan = manager.plan(net, Objective::kAccesses);
  const ExecutionPlan direct =
      manager.analyzer().heterogeneous(net, Objective::kAccesses);
  EXPECT_EQ(plan.total_accesses(), direct.total_accesses());
  EXPECT_EQ(plan.scheme(), "Het");
}

TEST(Manager, InterlayerOptionChangesScheme) {
  ManagerOptions options;
  options.interlayer_reuse = true;
  const MemoryManager manager(spec_kb(1024), options);
  const auto net = model::zoo::mnasnet();
  const ExecutionPlan plan = manager.plan(net, Objective::kAccesses);
  EXPECT_EQ(plan.scheme(), "Het+inter");
  EXPECT_GT(plan.interlayer_links(), 0u);

  const MemoryManager plain(spec_kb(1024));
  EXPECT_LT(plan.total_accesses(),
            plain.plan(net, Objective::kAccesses).total_accesses());
}

TEST(Manager, HomogeneousPlansAreHomogeneous) {
  const MemoryManager manager(spec_kb(256));
  const auto net = model::zoo::resnet18();
  const ExecutionPlan plan =
      manager.plan_with_policy(net, Policy::kFilterReuse, false,
                               Objective::kAccesses);
  for (const LayerAssignment& a : plan.assignments()) {
    // Either the requested policy or the fallback where it did not fit.
    EXPECT_TRUE(a.estimate.choice.policy == Policy::kFilterReuse ||
                a.estimate.choice.policy == Policy::kFallbackTiled);
  }
}

TEST(Manager, BestHomogeneousNeverBeatsHet) {
  const MemoryManager manager(spec_kb(64));
  const auto net = model::zoo::googlenet();
  const ExecutionPlan het = manager.plan(net, Objective::kAccesses);
  const ExecutionPlan hom = manager.plan_homogeneous(net, Objective::kAccesses);
  EXPECT_LE(het.total_accesses(), hom.total_accesses());
}

TEST(Manager, DescribeListsEveryLayerAndPolicy) {
  const MemoryManager manager(spec_kb(64));
  const auto net = model::zoo::resnet18();
  const ExecutionPlan plan = manager.plan(net, Objective::kAccesses);
  const std::string report = manager.describe(plan, net);
  for (const auto& layer : net.layers()) {
    EXPECT_NE(report.find(layer.name()), std::string::npos) << layer.name();
  }
  EXPECT_NE(report.find("Het"), std::string::npos);
  EXPECT_NE(report.find("MB off-chip"), std::string::npos);
  EXPECT_NE(report.find("prefetch coverage"), std::string::npos);
}

TEST(Manager, AllModelsPlanAtAllPaperSizes) {
  // Every zoo model must produce a feasible plan at every evaluated GLB
  // size under both objectives — the paper's entire sweep is executable.
  for (const auto glb : arch::paper_glb_sizes()) {
    const MemoryManager manager(arch::paper_spec(glb));
    for (const auto& net : model::zoo::all_models()) {
      for (Objective obj : {Objective::kAccesses, Objective::kLatency}) {
        const ExecutionPlan plan = manager.plan(net, obj);
        EXPECT_TRUE(plan.feasible()) << net.name() << " @ " << glb;
        EXPECT_EQ(plan.size(), net.size());
        EXPECT_GT(plan.total_accesses(), 0u);
      }
    }
  }
}

}  // namespace
}  // namespace rainbow::core
