// The shipped models/*.model files must stay in sync with the built-in
// zoo: users who start from the text files get exactly the evaluated
// networks.
#include <gtest/gtest.h>

#include <filesystem>

#include "model/parser.hpp"
#include "model/zoo/zoo.hpp"

namespace rainbow::model {
namespace {

std::filesystem::path models_dir() {
  // Tests run from the build tree; the data lives in the source tree.
  return std::filesystem::path(RAINBOW_SOURCE_DIR) / "models";
}

class ModelFileTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ModelFileTest, FileMatchesBuiltin) {
  const std::string name = GetParam();
  const auto path = models_dir() / (name + std::string(".model"));
  ASSERT_TRUE(std::filesystem::exists(path)) << path;
  const Network from_file = load_network(path);
  const Network builtin = zoo::by_name(name);
  ASSERT_EQ(from_file.size(), builtin.size()) << name;
  EXPECT_EQ(from_file.name(), builtin.name());
  for (std::size_t i = 0; i < builtin.size(); ++i) {
    EXPECT_EQ(from_file.layer(i), builtin.layer(i)) << name << " layer " << i;
    EXPECT_EQ(from_file.producer_of(i), builtin.producer_of(i))
        << name << " layer " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Shipped, ModelFileTest,
                         ::testing::Values("efficientnetb0", "googlenet",
                                           "mnasnet", "mobilenet",
                                           "mobilenetv2", "resnet18", "vgg16",
                                           "alexnet"),
                         [](const auto& info) { return std::string(info.param); });

}  // namespace
}  // namespace rainbow::model
