// Network-level property tests over randomly generated CNNs: the whole
// pipeline — parser, planner, engine, codegen — must uphold its invariants
// on models nobody hand-tuned for.  Parameterized over seeds.
#include <gtest/gtest.h>

#include "codegen/interpret.hpp"
#include "codegen/lower.hpp"
#include "core/interlayer.hpp"
#include "core/manager.hpp"
#include "engine/engine.hpp"
#include "model/parser.hpp"
#include "model/random.hpp"

namespace rainbow {
namespace {

using core::Objective;

class RandomNetworkTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  model::Network net_ = model::random_network(GetParam());
};

TEST_P(RandomNetworkTest, GenerationIsDeterministic) {
  const model::Network again = model::random_network(GetParam());
  ASSERT_EQ(again.size(), net_.size());
  for (std::size_t i = 0; i < net_.size(); ++i) {
    EXPECT_EQ(again.layer(i), net_.layer(i));
  }
}

TEST_P(RandomNetworkTest, DimensionsChain) {
  for (std::size_t i = 0; i + 1 < net_.size(); ++i) {
    const auto& producer = net_.layer(i);
    const auto& consumer = net_.layer(i + 1);
    if (consumer.kind() == model::LayerKind::kFullyConnected) {
      continue;  // dense head follows a global pool
    }
    EXPECT_EQ(consumer.channels(), producer.ofmap_channels())
        << net_.name() << " boundary " << i;
    EXPECT_EQ(consumer.ifmap_h(), producer.ofmap_h())
        << net_.name() << " boundary " << i;
  }
}

TEST_P(RandomNetworkTest, TextFormatRoundTrips) {
  const model::Network reparsed =
      model::parse_network(model::serialize_network(net_));
  ASSERT_EQ(reparsed.size(), net_.size());
  for (std::size_t i = 0; i < net_.size(); ++i) {
    EXPECT_EQ(reparsed.layer(i), net_.layer(i));
  }
}

TEST_P(RandomNetworkTest, PlansAreFeasibleAcrossSizes) {
  for (count_t kb : {64u, 256u}) {
    const core::MemoryManager manager(arch::paper_spec(util::kib(kb)));
    for (Objective obj : {Objective::kAccesses, Objective::kLatency}) {
      const auto plan = manager.plan(net_, obj);
      EXPECT_TRUE(plan.feasible()) << kb << " kB";
      EXPECT_EQ(plan.size(), net_.size());
    }
  }
}

TEST_P(RandomNetworkTest, HetNeverWorseThanHom) {
  const core::MemoryManager manager(arch::paper_spec(util::kib(128)));
  const auto het = manager.plan(net_, Objective::kAccesses);
  const auto hom = manager.plan_homogeneous(net_, Objective::kAccesses);
  EXPECT_LE(het.total_accesses(), hom.total_accesses());
}

TEST_P(RandomNetworkTest, EngineReproducesPlans) {
  const auto spec = arch::paper_spec(util::kib(128));
  const core::MemoryManager manager(spec);
  const engine::Engine engine(spec);
  const auto plan = manager.plan(net_, Objective::kAccesses);
  const auto exec = engine.execute_plan(plan, net_);
  EXPECT_EQ(exec.total_accesses, plan.total_accesses());
}

TEST_P(RandomNetworkTest, InterlayerNeverRegresses) {
  const core::Analyzer analyzer(arch::paper_spec(util::kib(512)));
  const auto base = analyzer.heterogeneous(net_, Objective::kAccesses);
  const auto linked = core::apply_interlayer_reuse(base, net_, analyzer);
  EXPECT_LE(linked.total_accesses(), base.total_accesses());
}

TEST_P(RandomNetworkTest, CodegenRoundTrips) {
  const auto spec = arch::paper_spec(util::kib(128));
  const core::MemoryManager manager(spec);
  const auto plan = manager.plan(net_, Objective::kAccesses);
  const auto program = codegen::lower(plan, net_);
  const auto run = codegen::Interpreter(spec).run(program);
  EXPECT_EQ(run.total_accesses, plan.total_accesses());
  EXPECT_LE(run.peak_glb_elems, spec.glb_elems());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNetworkTest,
                         ::testing::Range<std::uint64_t>(1, 25));

TEST(RandomNetwork, RespectsOptions) {
  model::RandomNetworkOptions options;
  options.allow_depthwise = false;
  options.allow_dense_head = false;
  options.min_layers = 3;
  options.max_layers = 10;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto net = model::random_network(seed, options);
    EXPECT_EQ(net.count_kind(model::LayerKind::kDepthwise), 0u);
    EXPECT_EQ(net.count_kind(model::LayerKind::kFullyConnected), 0u);
    EXPECT_LE(net.size(), 12u);  // target plus at most one block overshoot
  }
}

TEST(RandomNetwork, BadOptionsThrow) {
  model::RandomNetworkOptions options;
  options.min_layers = 0;
  EXPECT_THROW((void)model::random_network(1, options), std::invalid_argument);
  options.min_layers = 10;
  options.max_layers = 5;
  EXPECT_THROW((void)model::random_network(1, options), std::invalid_argument);
}

}  // namespace
}  // namespace rainbow
