// Tests for the static linter: the shipped artifacts (zoo models, the
// models/ directory, serialized plans) must lint clean of errors, and each
// corruption class must land on its own L-code with a line number.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/manager.hpp"
#include "core/plan_io.hpp"
#include "model/parser.hpp"
#include "model/zoo/zoo.hpp"
#include "validate/lint.hpp"

namespace rainbow::validate {
namespace {

TEST(LintModel, SerializedZooModelsHaveNoErrors) {
  for (const auto& net : model::zoo::all_models()) {
    const auto report = lint_model_text(model::serialize_network(net));
    EXPECT_EQ(report.error_count(), 0u) << net.name() << "\n"
                                        << report.summary();
  }
}

TEST(LintModel, ShippedModelFilesHaveNoErrors) {
  const std::filesystem::path dir =
      std::filesystem::path(RAINBOW_SOURCE_DIR) / "models";
  std::size_t seen = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".model") {
      continue;
    }
    ++seen;
    const auto report = lint_model_file(entry.path());
    EXPECT_EQ(report.error_count(), 0u) << entry.path() << "\n"
                                        << report.summary();
  }
  EXPECT_GE(seen, 8u);
}

TEST(LintModel, BadShapesFixtureTripsEveryRule) {
  const auto report = lint_model_file(std::filesystem::path(
      RAINBOW_SOURCE_DIR) / "tests" / "data" / "bad_shapes.model");
  EXPECT_EQ(report.count(Code::kModelParse), 3u) << report.summary();
  EXPECT_EQ(report.count(Code::kModelShape), 5u) << report.summary();
  EXPECT_FALSE(report.ok());
  // Findings are line-anchored so a hand-editor can jump to them.
  for (const auto& d : report.diagnostics()) {
    EXPECT_TRUE(d.layer.has_value()) << d.message();
  }
}

TEST(LintModel, MissingHeaderIsL001) {
  const auto report = lint_model_text("CV, c, 8, 8, 4, 3, 3, 8, 1, 1\n");
  EXPECT_TRUE(report.has(Code::kModelParse)) << report.summary();
}

TEST(LintModel, HugeShapeOverflowIsL005) {
  const auto report = lint_model_text(
      "network, huge\n"
      "CV, blowup, 2000000, 2000000, 2000, 3, 3, 2000, 1, 1\n");
  EXPECT_TRUE(report.has(Code::kModelOverflow)) << report.summary();
  EXPECT_FALSE(report.ok());
}

TEST(LintModel, PartialFoldsWarnL003) {
  // 2x2 output = 4 pixels on a 16x16 array: the only row fold is 4/16 busy.
  const auto report = lint_model_text(
      "network, tiny\n"
      "CV, c, 2, 2, 4, 1, 1, 16, 1, 0\n");
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.has(Code::kModelDivisibility)) << report.summary();
}

TEST(LintModel, TrunkDiscontinuityWarnsL004) {
  const auto report = lint_model_text(
      "network, pooled\n"
      "CV, a, 16, 16, 8, 3, 3, 16, 1, 1\n"
      "CV, b, 8, 8, 16, 3, 3, 16, 1, 1\n");  // implicit 2x2 pool before b
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.has(Code::kModelTrunkMismatch)) << report.summary();
}

class LintPlanFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    net_.emplace(model::zoo::resnet18());
    const core::MemoryManager manager(arch::paper_spec(util::kib(64)));
    text_ = core::serialize_plan(
        manager.plan(*net_, core::Objective::kAccesses));
  }

  std::optional<model::Network> net_;
  std::string text_;
};

TEST_F(LintPlanFixture, SerializedPlanIsClean) {
  const auto report = lint_plan_text(text_, &*net_);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST_F(LintPlanFixture, UnknownPolicyLabelIsL006) {
  const auto report = lint_plan_text(
      "plan, resnet18, 65536, 8, accesses\n"
      "0, warp9x, 0, 1, 0, 0, 0\n");
  EXPECT_TRUE(report.has(Code::kPlanParse)) << report.summary();
  EXPECT_FALSE(report.ok());
}

TEST_F(LintPlanFixture, OutOfOrderIndexIsL007) {
  std::string bad = text_;
  const auto pos = bad.find("\n0, ");
  ASSERT_NE(pos, std::string::npos);
  bad.replace(pos, 4, "\n5, ");
  const auto report = lint_plan_text(bad, &*net_);
  EXPECT_TRUE(report.has(Code::kPlanRange)) << report.summary();
}

TEST_F(LintPlanFixture, WrongModelNameIsL007) {
  const auto other = model::zoo::mobilenet();
  const auto report = lint_plan_text(text_, &other);
  EXPECT_TRUE(report.has(Code::kPlanRange)) << report.summary();
  EXPECT_FALSE(report.ok());
}

TEST_F(LintPlanFixture, MissingRowsIsL007) {
  const std::string truncated = text_.substr(0, text_.rfind('\n', text_.size() - 2) + 1);
  const auto report = lint_plan_text(truncated, &*net_);
  EXPECT_TRUE(report.has(Code::kPlanRange)) << report.summary();
}

TEST_F(LintPlanFixture, HeaderGarbageIsL006) {
  const auto report = lint_plan_text("plan, resnet18, -4, zero, speed\n");
  EXPECT_GE(report.count(Code::kPlanParse), 3u) << report.summary();
}

TEST(LintSpec, PaperSpecIsClean) {
  const auto report = lint_spec(arch::paper_spec(util::kib(256)));
  EXPECT_TRUE(report.empty()) << report.summary();
}

TEST(LintSpec, OutOfRangeGlbWarns) {
  const auto report = lint_spec(arch::paper_spec(util::kib(16)));
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.has(Code::kSpecSanity)) << report.summary();
}

TEST(LintSpec, UnusualWidthWarns) {
  auto spec = arch::paper_spec(util::kib(256));
  spec.data_width_bits = 24;
  const auto report = lint_spec(spec);
  EXPECT_TRUE(report.has(Code::kSpecSanity)) << report.summary();
}

TEST(LintSpec, InvalidSpecIsAnError) {
  auto spec = arch::paper_spec(util::kib(256));
  spec.data_width_bits = 12;  // not a whole number of bytes
  const auto report = lint_spec(spec);
  EXPECT_FALSE(report.ok()) << report.summary();
}

}  // namespace
}  // namespace rainbow::validate
