// Golden-file test for the rainbow_analyze JSON schema: the library's
// write_json (the exact code the CLI ships) is run on a fixed pair of
// combos — a het plan and a forced prefetch policy, both with races +
// critical path on — and compared byte-for-byte against
// tests/data/analyze_report.json.  Schema changes are fine, but they must
// be deliberate: regenerate the fixture (instructions below) and review
// the diff.
#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyze_report.hpp"
#include "model/zoo/zoo.hpp"

namespace rainbow::analysis {
namespace {

std::vector<ComboOutcome> golden_outcomes(const AnalyzeOptions& options) {
  const auto cache = std::make_shared<core::EvalCache>();
  const model::Network net = model::zoo::mobilenet();
  std::vector<ComboOutcome> outcomes;
  // A clean het plan with every analysis on...
  outcomes.push_back(analyze_combo(
      net, {"mobilenet", 256, "het", false, false, core::Objective::kAccesses},
      options, cache));
  // ...and a forced double-buffered policy, covering the prefetch side of
  // the schema.
  outcomes.push_back(analyze_combo(
      net, {"mobilenet", 256, "p2", true, false, core::Objective::kAccesses},
      options, cache));
  return outcomes;
}

TEST(AnalyzeJsonGolden, SchemaMatchesFixture) {
  AnalyzeOptions options;
  options.races = true;
  options.critical_path = true;
  options.strict = true;
  std::ostringstream actual;
  write_json(golden_outcomes(options), options, actual);

  const std::string path =
      std::string(RAINBOW_SOURCE_DIR) + "/tests/data/analyze_report.json";
  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing fixture " << path;
  std::stringstream expected;
  expected << in.rdbuf();

  EXPECT_EQ(expected.str(), actual.str())
      << "rainbow_analyze JSON schema changed.  If intentional, regenerate "
         "the fixture by writing the ACTUAL string above to "
         "tests/data/analyze_report.json and review the diff.";
}

TEST(AnalyzeJsonGolden, OutcomesBehindTheFixtureAreClean) {
  AnalyzeOptions options;
  options.races = true;
  options.critical_path = true;
  const std::vector<ComboOutcome> outcomes = golden_outcomes(options);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0].status, "ok");
  EXPECT_TRUE(outcomes[0].races_run);
  EXPECT_TRUE(outcomes[0].critical_path_run);
  EXPECT_GT(outcomes[0].graph_nodes, 0u);
  EXPECT_GT(outcomes[0].graph_cycles, 0.0);
  EXPECT_EQ(outcomes[1].status, "ok");
  EXPECT_TRUE(outcomes[1].combo.prefetch);
}

}  // namespace
}  // namespace rainbow::analysis
