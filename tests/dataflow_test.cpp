// Unit tests for the WS/IS/OS dataflow models (Section 2.3): fold
// geometry, timing formulas, partial-sum spill behaviour, and the reason
// the baseline picks output stationary.
#include <gtest/gtest.h>

#include "model/zoo/zoo.hpp"
#include "scalesim/simulator.hpp"

namespace rainbow::scalesim {
namespace {

using model::make_conv;
using model::make_depthwise;
using model::make_fully_connected;

arch::AcceleratorSpec spec_kb(count_t kb) { return arch::paper_spec(util::kib(kb)); }

TEST(Dataflow, StringsRoundTrip) {
  for (Dataflow d : {Dataflow::kOutputStationary, Dataflow::kWeightStationary,
                     Dataflow::kInputStationary}) {
    EXPECT_EQ(dataflow_from_string(to_string(d)), d);
  }
  EXPECT_EQ(dataflow_from_string("os"), Dataflow::kOutputStationary);
  EXPECT_EQ(dataflow_from_string("Ws"), Dataflow::kWeightStationary);
  EXPECT_THROW((void)dataflow_from_string("rs"), std::invalid_argument);
}

TEST(Dataflow, OutputStationaryMatchesSystolicModel) {
  const auto spec = spec_kb(64);
  const auto layer = make_conv("c", 14, 14, 32, 3, 3, 64, 1, 1);
  EXPECT_EQ(dataflow_compute_cycles(layer, spec, Dataflow::kOutputStationary),
            compute_cycles(layer, spec));
}

TEST(Dataflow, FoldCounts) {
  const auto spec = spec_kb(64);
  const auto layer = make_conv("c", 14, 14, 32, 3, 3, 64, 1, 1);
  // M = 196, N = 64, T = 288.
  const auto os = dataflow_folds(layer, spec, Dataflow::kOutputStationary);
  EXPECT_EQ(os.folds, 13u * 4);
  EXPECT_EQ(os.psum_rounds, 1u);

  const auto ws = dataflow_folds(layer, spec, Dataflow::kWeightStationary);
  EXPECT_EQ(ws.folds, 18u * 4);  // ceil(288/16) x ceil(64/16)
  EXPECT_EQ(ws.psum_rounds, 18u);
  EXPECT_EQ(ws.cycles_per_fold, 16u + 196 + 30);

  const auto is = dataflow_folds(layer, spec, Dataflow::kInputStationary);
  EXPECT_EQ(is.folds, 18u * 13);  // ceil(288/16) x ceil(196/16)
  EXPECT_EQ(is.psum_rounds, 18u);
  EXPECT_EQ(is.cycles_per_fold, 16u + 64 + 30);
}

TEST(Dataflow, DepthwiseGroups) {
  const auto spec = spec_kb(64);
  const auto dw = make_depthwise("dw", 14, 14, 32, 3, 3, 1, 1);
  // T = 9 < 16: a single reduction slice, no partial-sum rounds even
  // under WS.
  const auto ws = dataflow_folds(dw, spec, Dataflow::kWeightStationary);
  EXPECT_EQ(ws.psum_rounds, 1u);
  EXPECT_EQ(ws.folds, 1u * 1 * 32);
}

TEST(Dataflow, ShallowReductionsFavourWeightStationary) {
  // An early layer with a shallow reduction (T = 27) and many output
  // pixels: OS pays the fill/drain on every small fold, while WS pins the
  // whole reduction in two slices and streams all 3136 pixels through.
  const auto spec = spec_kb(64);
  const auto early = make_conv("c", 56, 56, 3, 3, 3, 64, 1, 1);
  EXPECT_LT(dataflow_compute_cycles(early, spec, Dataflow::kWeightStationary),
            dataflow_compute_cycles(early, spec, Dataflow::kOutputStationary));
  // Deep-reduction late layers reverse the preference.
  const auto late = make_conv("c", 7, 7, 512, 3, 3, 512, 1, 1);
  EXPECT_LT(dataflow_compute_cycles(late, spec, Dataflow::kOutputStationary),
            dataflow_compute_cycles(late, spec, Dataflow::kWeightStationary));
}

TEST(Dataflow, PartialSumsSpillUnderWeightStationary) {
  // Large ofmap (100k elements) vs a 2 kB usable ofmap buffer: WS pays
  // DRAM round-trips for partial sums, OS pays none.
  const auto spec = spec_kb(64);
  const auto layer = make_conv("c", 28, 28, 64, 3, 3, 128, 1, 1);
  const BufferPartition part{.ifmap_fraction = 0.5};
  const Simulator os(spec, part, Dataflow::kOutputStationary);
  const Simulator ws(spec, part, Dataflow::kWeightStationary);
  const auto os_result = os.simulate_layer(layer);
  const auto ws_result = ws.simulate_layer(layer);
  EXPECT_EQ(os_result.traffic.psum_transfers, 0u);
  EXPECT_GT(ws_result.traffic.psum_transfers, 0u);
  EXPECT_GT(ws_result.traffic.total(), os_result.traffic.total());
}

TEST(Dataflow, SmallOfmapAvoidsSpill) {
  // A 7x7 ofmap channel set that fits the 2 kB staging buffer: WS partial
  // sums stay on-chip.
  const auto spec = spec_kb(64);
  const auto layer = make_conv("c", 7, 7, 256, 3, 3, 32, 1, 1);
  ASSERT_LE(layer.ofmap_elems(), 2048u);
  const Simulator ws(spec, BufferPartition{.ifmap_fraction = 0.5},
                     Dataflow::kWeightStationary);
  EXPECT_EQ(ws.simulate_layer(layer).traffic.psum_transfers, 0u);
}

TEST(Dataflow, OutputStationaryWinsOnWholeNetworks) {
  // The paper's baseline choice: on full CNNs with the 4 kB ofmap buffer,
  // OS moves less DRAM data than WS or IS.
  const auto spec = spec_kb(64);
  const BufferPartition part{.ifmap_fraction = 0.5};
  for (const auto& net : {model::zoo::resnet18(), model::zoo::mobilenet()}) {
    const count_t os =
        Simulator(spec, part, Dataflow::kOutputStationary).run(net).total_accesses;
    const count_t ws =
        Simulator(spec, part, Dataflow::kWeightStationary).run(net).total_accesses;
    const count_t is =
        Simulator(spec, part, Dataflow::kInputStationary).run(net).total_accesses;
    EXPECT_LE(os, ws) << net.name();
    EXPECT_LE(os, is) << net.name();
  }
}

TEST(Dataflow, UtilizationStaysBounded) {
  const auto spec = spec_kb(64);
  const BufferPartition part{.ifmap_fraction = 0.5};
  for (Dataflow d : {Dataflow::kOutputStationary, Dataflow::kWeightStationary,
                     Dataflow::kInputStationary}) {
    const Simulator sim(spec, part, d);
    const auto net = model::zoo::resnet18();
    for (const auto& layer : net.layers()) {
      const auto r = sim.simulate_layer(layer);
      EXPECT_GT(r.utilization, 0.0) << to_string(d) << " " << layer.name();
      EXPECT_LE(r.utilization, 1.0) << to_string(d) << " " << layer.name();
    }
  }
}

TEST(Dataflow, TracedRunRequiresOutputStationary) {
  const Simulator ws(spec_kb(64), BufferPartition{.ifmap_fraction = 0.5},
                     Dataflow::kWeightStationary);
  EXPECT_THROW((void)ws.run_traced(model::zoo::mobilenet()),
               std::invalid_argument);
}

}  // namespace
}  // namespace rainbow::scalesim
