// Unit tests for the Figure 2 access-direction re-load model.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/fallback.hpp"

namespace rainbow::core {
namespace {

using model::Layer;
using model::make_conv;

Layer conv() { return make_conv("c", 28, 28, 16, 3, 3, 32, 1, 1); }

TEST(AccessDirection, Names) {
  EXPECT_EQ(to_string(AccessDirection::kHeightWise), "height-wise");
  EXPECT_EQ(to_string(AccessDirection::kWidthWise), "width-wise");
  EXPECT_EQ(to_string(AccessDirection::kDepthWise), "depth-wise");
}

TEST(Reload, FullTileIsSinglePass) {
  const Layer l = conv();
  // Covering the whole direction in one tile loads the padded map once.
  EXPECT_EQ(ifmap_traffic_with_reload(l, AccessDirection::kHeightWise,
                                      l.ofmap_h()),
            l.padded_ifmap_elems());
  EXPECT_EQ(ifmap_traffic_with_reload(l, AccessDirection::kWidthWise,
                                      l.ofmap_w()),
            l.padded_ifmap_elems());
  EXPECT_EQ(reload_overhead(l, AccessDirection::kHeightWise, l.ofmap_h()), 0u);
}

TEST(Reload, HeightWiseHaloPerCut) {
  const Layer l = conv();  // F_H=3, S=1, O_H=28, padded 30x30x16
  // Tiles of 7 output rows: 4 tiles, each loading (7-1)*1+3 = 9 input rows.
  // 4*9 = 36 rows vs the single-pass 30: 6 halo rows re-loaded.
  const count_t traffic =
      ifmap_traffic_with_reload(l, AccessDirection::kHeightWise, 7);
  EXPECT_EQ(traffic, 36u * 30 * 16);
  EXPECT_EQ(reload_overhead(l, AccessDirection::kHeightWise, 7),
            6u * 30 * 16);
}

TEST(Reload, WidthWiseHaloPerCut) {
  const Layer l = conv();
  const count_t traffic =
      ifmap_traffic_with_reload(l, AccessDirection::kWidthWise, 7);
  // Symmetric layer: same overhead as the height-wise cut.
  EXPECT_EQ(traffic, 30u * 36 * 16);
}

TEST(Reload, SmallerTilesReloadMore) {
  const Layer l = conv();
  count_t prev = ifmap_traffic_with_reload(l, AccessDirection::kHeightWise,
                                           l.ofmap_h());
  for (int tile : {14, 7, 4, 2, 1}) {
    const count_t t =
        ifmap_traffic_with_reload(l, AccessDirection::kHeightWise, tile);
    EXPECT_GE(t, prev) << "tile " << tile;
    prev = t;
  }
}

TEST(Reload, StrideReducesOverlap) {
  // With S == F_H there is no overlap: any tiling is a single pass.
  const Layer l = make_conv("s", 28, 28, 16, 2, 2, 32, 2, 0);
  EXPECT_EQ(reload_overhead(l, AccessDirection::kHeightWise, 1), 0u);
}

TEST(Reload, DepthWiseCutsAreFree) {
  const Layer l = conv();
  for (int tile : {1, 2, 8, 16}) {
    EXPECT_EQ(ifmap_traffic_with_reload(l, AccessDirection::kDepthWise, tile),
              l.padded_ifmap_elems());
  }
}

TEST(Reload, SingleRowTilesMaximizeHalo) {
  const Layer l = conv();
  // One output row per tile: each loads F_H rows; 28 * 3 = 84 rows total.
  EXPECT_EQ(ifmap_traffic_with_reload(l, AccessDirection::kHeightWise, 1),
            84u * 30 * 16);
}

TEST(Reload, OutOfRangeTileThrows) {
  const Layer l = conv();
  EXPECT_THROW((void)ifmap_traffic_with_reload(l, AccessDirection::kHeightWise, 0),
               std::invalid_argument);
  EXPECT_THROW((void)ifmap_traffic_with_reload(l, AccessDirection::kHeightWise, 29),
               std::invalid_argument);
  EXPECT_THROW((void)ifmap_traffic_with_reload(l, AccessDirection::kWidthWise, 0),
               std::invalid_argument);
  EXPECT_THROW((void)ifmap_traffic_with_reload(l, AccessDirection::kDepthWise, 17),
               std::invalid_argument);
}

// The height-wise direction is never worse than width-wise for layers that
// are at least as wide as tall (rows are contiguous in the padded width).
TEST(Reload, HeightWiseIsTheCheapSpatialDirection) {
  const Layer wide = make_conv("w", 14, 56, 8, 3, 3, 16, 1, 1);
  const count_t h = ifmap_traffic_with_reload(wide, AccessDirection::kHeightWise, 2);
  const count_t w = ifmap_traffic_with_reload(wide, AccessDirection::kWidthWise, 2);
  EXPECT_LE(h, w);
}

}  // namespace
}  // namespace rainbow::core
