// White-box detail tests for the estimator: the exposed-transfer terms of
// the prefetch latency model (recovered through compute-bound layers),
// explicit-vs-auto tiling parameters, option interactions, and the
// batch/inter-layer combinations.
#include <gtest/gtest.h>

#include "arch/accelerator.hpp"
#include "core/estimator.hpp"

namespace rainbow::core {
namespace {

using model::Layer;
using model::make_conv;
using model::make_depthwise;

arch::AcceleratorSpec spec_kb(count_t kb) { return arch::paper_spec(util::kib(kb)); }

// A compute-bound layer: deep reduction, small maps.  For such layers the
// prefetch latency is exposed/bw + compute, so the exposure term can be
// recovered exactly: exposed = (latency - compute) * bw.
Layer compute_bound() { return make_conv("c", 7, 7, 256, 3, 3, 256, 1, 1); }

count_t recovered_exposure(const Estimator& est, const Layer& layer,
                           const PolicyChoice& choice) {
  const Estimate e = est.estimate_choice(layer, choice);
  EXPECT_TRUE(e.feasible);
  const double hidden =
      (e.latency_cycles - static_cast<double>(e.compute_cycles)) *
      est.spec().elements_per_cycle();
  return static_cast<count_t>(hidden + 0.5);
}

TEST(EstimatorDetail, Policy1ExposureIsFiltersPlusWindowPlusLastRow) {
  const Estimator est(arch::paper_spec(util::mib(8)));
  const Layer l = compute_bound();
  PolicyChoice p1{.policy = Policy::kIfmapReuse, .prefetch = true};
  const count_t expected = l.filter_elems() +
                           3u * l.padded_ifmap_w() * l.channels() +
                           static_cast<count_t>(l.ofmap_w()) * l.filters();
  EXPECT_EQ(recovered_exposure(est, l, p1), expected);
}

TEST(EstimatorDetail, Policy2ExposureIsIfmapPlusOneFilterPlusOneChannel) {
  const Estimator est(arch::paper_spec(util::mib(8)));
  const Layer l = compute_bound();
  PolicyChoice p2{.policy = Policy::kFilterReuse, .prefetch = true};
  const count_t expected =
      l.padded_ifmap_elems() + l.single_filter_elems() +
      static_cast<count_t>(l.ofmap_h()) * l.ofmap_w();
  EXPECT_EQ(recovered_exposure(est, l, p2), expected);
}

TEST(EstimatorDetail, Policy3ExposureDrainsTheWholeOfmap) {
  const Estimator est(arch::paper_spec(util::mib(8)));
  const Layer l = compute_bound();
  PolicyChoice p3{.policy = Policy::kPerChannel, .prefetch = true};
  const count_t expected =
      static_cast<count_t>(l.filter_h()) * l.filter_w() * l.filters() +
      static_cast<count_t>(l.filter_h()) * l.padded_ifmap_w() +
      l.ofmap_elems();
  EXPECT_EQ(recovered_exposure(est, l, p3), expected);
}

TEST(EstimatorDetail, ExplicitBlockOverridesAutoTuning) {
  const Estimator est(spec_kb(1024));
  const Layer l = make_conv("c", 14, 14, 32, 3, 3, 64, 1, 1);
  const PolicyChoice manual{.policy = Policy::kPartialIfmap,
                            .filter_block = 5};
  const Estimate e = est.estimate_choice(l, manual);
  EXPECT_EQ(e.choice.filter_block, 5);
  // ceil(64/5) = 13 sweeps.
  EXPECT_EQ(e.traffic.ifmap_reads, l.padded_ifmap_elems() * 13);
  // Auto-tuning at the same GLB picks the largest feasible block instead.
  const Estimate autod = est.estimate(l, Policy::kPartialIfmap, false);
  EXPECT_GT(autod.choice.filter_block, 5);
}

TEST(EstimatorDetail, UnpaddedOptionAffectsOnlyIfmapReads) {
  const Estimator padded(spec_kb(1024), {.padded_traffic = true});
  const Estimator unpadded(spec_kb(1024), {.padded_traffic = false});
  const Layer l = make_conv("c", 28, 28, 16, 5, 5, 24, 1, 2);
  for (Policy p : kAllPolicies) {
    const auto tp = padded.estimate(l, p, false).traffic;
    const auto tu = unpadded.estimate(l, p, false).traffic;
    EXPECT_EQ(tp.filter_reads, tu.filter_reads) << to_string(p);
    EXPECT_EQ(tp.ofmap_writes, tu.ofmap_writes) << to_string(p);
    EXPECT_GE(tp.ifmap_reads, tu.ifmap_reads) << to_string(p);
  }
}

TEST(EstimatorDetail, BatchAndInterlayerCompose) {
  // Batch multiplies the activations; a resident ifmap then zeroes the
  // reads regardless (the producer's output is consumed in place each
  // image).
  const Estimator b4(spec_kb(1024), {.batch = 4});
  const Layer l = make_conv("c", 14, 14, 32, 3, 3, 64, 1, 1);
  const InterlayerAdjust adjust{.ifmap_resident = true};
  const auto t = b4.traffic(l, {.policy = Policy::kIfmapReuse}, adjust);
  EXPECT_EQ(t.ifmap_reads, 0u);
  EXPECT_EQ(t.ofmap_writes, 4 * l.ofmap_elems());
  EXPECT_EQ(t.filter_reads, l.filter_elems());  // P1 amortizes over batch
}

TEST(EstimatorDetail, FallbackWithInterlayerKeepsResidentTerms) {
  const Estimator est(spec_kb(64));
  const Layer l = make_conv("c", 28, 28, 16, 3, 3, 32, 1, 1);
  const InterlayerAdjust adjust{.keep_ofmap = true};
  const Estimate e =
      est.estimate(l, Policy::kFallbackTiled, /*prefetch=*/false, adjust);
  ASSERT_TRUE(e.feasible);
  EXPECT_EQ(e.traffic.ofmap_writes, 0u);
  EXPECT_EQ(e.footprint.ofmap, l.ofmap_elems());
}

TEST(EstimatorDetail, DepthwiseBlockUpperBoundIsChannels) {
  const Estimator est(arch::paper_spec(util::mib(32)));
  const Layer dw = make_depthwise("dw", 28, 28, 48, 3, 3, 1, 1);
  const Estimate e = est.estimate(dw, Policy::kPartialIfmap, false);
  ASSERT_TRUE(e.feasible);
  EXPECT_LE(e.choice.filter_block, 48);
  EXPECT_GE(e.choice.filter_block, 1);
}

TEST(EstimatorDetail, SerializedLatencyDecomposesExactly) {
  const Estimator est(spec_kb(256));
  const Layer l = make_conv("c", 28, 28, 32, 3, 3, 48, 1, 1);
  for (Policy p : kAllPolicies) {
    const Estimate e = est.estimate(l, p, false);
    EXPECT_DOUBLE_EQ(
        e.latency_cycles,
        e.compute_cycles + static_cast<double>(e.accesses()) /
                               est.spec().elements_per_cycle())
        << to_string(p);
  }
}

}  // namespace
}  // namespace rainbow::core
