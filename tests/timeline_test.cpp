// Tests for the engine timeline diagnostics.
#include <gtest/gtest.h>

#include <sstream>

#include "core/estimator.hpp"
#include "engine/engine.hpp"
#include "engine/timeline.hpp"

namespace rainbow::engine {
namespace {

using core::Policy;
using core::PolicyChoice;

arch::AcceleratorSpec spec_kb(count_t kb) { return arch::paper_spec(util::kib(kb)); }

TEST(Timeline, TotalsMatchTheEngine) {
  const auto spec = spec_kb(1024);
  const Engine engine(spec);
  const auto layer = model::make_conv("c", 14, 14, 32, 3, 3, 64, 1, 1);
  for (Policy p : {Policy::kIfmapReuse, Policy::kFilterReuse}) {
    for (bool prefetch : {false, true}) {
      const PolicyChoice choice{.policy = p, .prefetch = prefetch};
      const TimelineStats stats = layer_timeline(spec, layer, choice);
      const auto exec = engine.execute_layer(layer, choice);
      EXPECT_NEAR(stats.total_cycles, exec.latency_cycles,
                  1e-6 * exec.latency_cycles)
          << core::to_string(p) << prefetch;
    }
  }
}

TEST(Timeline, BusyTimesEqualResourceDemands) {
  const auto spec = spec_kb(1024);
  const auto layer = model::make_conv("c", 14, 14, 32, 3, 3, 64, 1, 1);
  const PolicyChoice choice{.policy = Policy::kIfmapReuse, .prefetch = true};
  const TimelineStats stats = layer_timeline(spec, layer, choice);
  const core::Estimator est(spec);
  const auto e = est.estimate_choice(layer, choice);
  EXPECT_NEAR(stats.dram_busy_cycles,
              static_cast<double>(e.accesses()) / spec.elements_per_cycle(),
              1.0);
  EXPECT_NEAR(stats.compute_busy_cycles, e.compute_cycles, 1e-6);
  EXPECT_LE(stats.dram_utilization(), 1.0 + 1e-9);
  EXPECT_LE(stats.compute_utilization(), 1.0 + 1e-9);
}

TEST(Timeline, PrefetchRaisesComputeUtilization) {
  const auto spec = spec_kb(1024);
  const auto layer = model::make_conv("c", 28, 28, 64, 3, 3, 128, 1, 1);
  const TimelineStats serial =
      layer_timeline(spec, layer, {.policy = Policy::kIfmapReuse});
  const TimelineStats overlap = layer_timeline(
      spec, layer, {.policy = Policy::kIfmapReuse, .prefetch = true});
  EXPECT_GT(overlap.compute_utilization(), serial.compute_utilization());
  EXPECT_LT(overlap.exposed_transfer_cycles(),
            serial.exposed_transfer_cycles());
}

TEST(Timeline, RenderProducesTwoAlignedRows) {
  const auto spec = spec_kb(1024);
  const auto layer = model::make_conv("c", 14, 14, 16, 3, 3, 32, 1, 1);
  const std::string chart = render_timeline(
      spec, layer, {.policy = Policy::kFilterReuse, .prefetch = true}, 40);
  EXPECT_NE(chart.find("DRAM"), std::string::npos);
  EXPECT_NE(chart.find("compute"), std::string::npos);
  EXPECT_NE(chart.find('#'), std::string::npos);
  // Both occupancy rows have exactly the requested width.
  std::istringstream is(chart);
  std::string line;
  std::getline(is, line);  // header
  std::getline(is, line);
  EXPECT_EQ(line.size(), std::string("  DRAM    ").size() + 40);
  std::getline(is, line);
  EXPECT_EQ(line.size(), std::string("  compute ").size() + 40);
}

}  // namespace
}  // namespace rainbow::engine
