// Tests for the network-summary analysis: the dominance classification
// must reproduce the paper's two Section 5.1 groups exactly, and the
// recommended partition must match each group's winning baseline.
#include <gtest/gtest.h>

#include "model/summary.hpp"
#include "model/zoo/zoo.hpp"
#include "scalesim/simulator.hpp"

namespace rainbow::model {
namespace {

TEST(Summary, TotalsAndPeak) {
  Network net("n");
  net.add(make_conv("a", 8, 8, 3, 3, 3, 4, 1, 1));
  net.add(make_conv("big", 8, 8, 4, 3, 3, 64, 1, 1));
  const NetworkSummary s = summarize(net);
  EXPECT_EQ(s.total_macs, net.total_macs());
  EXPECT_EQ(s.total_filter_elems, net.total_filter_elems());
  EXPECT_EQ(s.peak_layer_index, 1u);
  EXPECT_GT(s.arithmetic_intensity, 0.0);
}

TEST(Summary, DominanceMatchesThePapersGroups) {
  // Section 5.1: EfficientNetB0 / MnasNet / MobileNetV2 benefit from a
  // larger ifmap share; GoogLeNet / MobileNet / ResNet18 from a larger
  // filter share.  MobileNet sits on the boundary in our accounting
  // (4.2M weights vs 4.9M activations): anything but ifmap-dominated is
  // consistent with the paper's grouping.
  for (const char* name : {"EfficientNetB0", "MnasNet", "MobileNetV2"}) {
    EXPECT_EQ(summarize(zoo::by_name(name)).dominance,
              Dominance::kIfmapDominated)
        << name;
  }
  for (const char* name : {"GoogLeNet", "ResNet18"}) {
    EXPECT_EQ(summarize(zoo::by_name(name)).dominance,
              Dominance::kFilterDominated)
        << name;
  }
  EXPECT_NE(summarize(zoo::by_name("MobileNet")).dominance,
            Dominance::kIfmapDominated);
}

TEST(Summary, RecommendationPredictsTheWinningBaseline) {
  // The rule of thumb must pick a partition close to the actual winner in
  // the baseline simulator at the smallest buffer (within 5%: boundary
  // models like MobileNetV2 can prefer the middle split by a few percent).
  const auto spec = arch::paper_spec(util::kib(64));
  for (const auto& net : zoo::all_models()) {
    const double recommended =
        recommended_ifmap_fraction(summarize(net));
    const scalesim::Simulator sim(
        spec, scalesim::BufferPartition{.ifmap_fraction = recommended});
    const count_t with_rule = sim.run(net).total_accesses;
    count_t best = ~0ull;
    for (const auto& part : scalesim::paper_partitions()) {
      best = std::min(best,
                      scalesim::Simulator(spec, part).run(net).total_accesses);
    }
    EXPECT_LE(static_cast<double>(with_rule),
              1.05 * static_cast<double>(best))
        << net.name();
  }
}

TEST(Summary, BalancedBandWorks) {
  Network net("even");
  // ifmap 8*8*16 = 1024 elems; filters 3*3*16*8 = 1152: within 10%.
  net.add(make_conv("a", 8, 8, 16, 3, 3, 8, 1, 1));
  EXPECT_EQ(summarize(net, 0.10).dominance, Dominance::kBalanced);
  EXPECT_EQ(summarize(net, 0.01).dominance, Dominance::kFilterDominated);
  EXPECT_DOUBLE_EQ(
      recommended_ifmap_fraction(summarize(net, 0.10)), 0.50);
}

TEST(Summary, VggIsExtremelyFilterDominated) {
  const NetworkSummary s = summarize(zoo::vgg16());
  EXPECT_EQ(s.dominance, Dominance::kFilterDominated);
  EXPECT_GT(s.total_filter_elems, 10 * s.total_ifmap_elems);
}

}  // namespace
}  // namespace rainbow::model
