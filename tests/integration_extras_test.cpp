// Second integration wave over the extended surface: the extra zoo
// models, the analysis modules composed with real plans, and per-layer
// cross-checks that the timeline, traced baseline, and fusion analyses
// stay consistent with the primary stack.
#include <gtest/gtest.h>

#include "core/compression.hpp"
#include "core/fusion.hpp"
#include "core/manager.hpp"
#include "core/multitenant.hpp"
#include "core/plan_io.hpp"
#include "core/report.hpp"
#include "dse/sensitivity.hpp"
#include "engine/timeline.hpp"
#include "model/random.hpp"
#include "model/zoo/zoo.hpp"
#include "scalesim/simulator.hpp"

namespace rainbow {
namespace {

using core::Objective;

arch::AcceleratorSpec spec_kb(count_t kb) { return arch::paper_spec(util::kib(kb)); }

TEST(IntegrationExtras, ExtraModelsSurviveTheWholeToolchain) {
  for (const auto& net : {model::zoo::vgg16(), model::zoo::alexnet()}) {
    const auto spec = spec_kb(128);
    const core::MemoryManager manager(spec);
    const auto plan = manager.plan(net, Objective::kAccesses);
    EXPECT_TRUE(plan.feasible()) << net.name();
    // Report, JSON, plan round trip.
    const auto report = core::build_report(plan, net);
    EXPECT_EQ(report.layers.size(), net.size());
    EXPECT_FALSE(core::to_json(report).empty());
    const auto reloaded = core::parse_plan(core::serialize_plan(plan), net);
    EXPECT_EQ(reloaded.total_accesses(), plan.total_accesses()) << net.name();
    // Energy, both models.
    EXPECT_GT(core::plan_energy(plan, net).total_mj(), 0.0);
    EXPECT_GT(core::hierarchical_plan_energy(plan, net).total_mj(), 0.0);
  }
}

TEST(IntegrationExtras, TimelineSumsMatchPlanLatencyOnRandomNetworks) {
  for (std::uint64_t seed : {3u, 11u}) {
    const auto net = model::random_network(seed);
    const auto spec = spec_kb(128);
    const core::MemoryManager manager(spec);
    const auto plan = manager.plan(net, Objective::kLatency);
    double timeline_total = 0.0;
    for (const auto& a : plan.assignments()) {
      timeline_total += engine::layer_timeline(spec, net.layer(a.layer_index),
                                               a.estimate.choice)
                            .total_cycles;
    }
    // The timeline replays the engine; plan latency is the estimator's.
    // Serial layers agree exactly; prefetch layers within pipeline skew.
    EXPECT_GE(timeline_total, 0.99 * plan.total_latency_cycles()) << seed;
    EXPECT_LE(timeline_total, 1.35 * plan.total_latency_cycles()) << seed;
  }
}

TEST(IntegrationExtras, FusionInvariantsOnRandomNetworks) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto net = model::random_network(seed);
    const auto spec = spec_kb(256);
    const core::MemoryManager manager(spec);
    const core::Estimator estimator(spec);
    const auto plan = manager.plan(net, Objective::kAccesses);
    const auto candidates = core::fusion_candidates(net, plan, estimator);
    for (const auto& c : candidates) {
      EXPECT_LT(c.producer + 1, net.size()) << seed;
      if (c.feasible) {
        EXPECT_LE(c.memory_elems, spec.glb_elems()) << seed;
      }
      // Fusing can never *create* traffic beyond the unfused pair.
      EXPECT_LE(c.fused_accesses,
                c.unfused_accesses + net.layer(c.producer).ofmap_elems())
          << seed;
    }
    const auto chosen = core::select_fusions(candidates);
    EXPECT_LE(core::fused_total_accesses(plan, chosen),
              plan.total_accesses())
        << seed;
  }
}

TEST(IntegrationExtras, MultiTenantOnRandomNetworks) {
  for (std::uint64_t seed : {2u, 9u}) {
    const auto a = model::random_network(seed);
    const auto b = model::random_network(seed + 100);
    const auto spec = spec_kb(512);
    const auto plan =
        core::plan_multi_tenant(a, b, spec, Objective::kAccesses);
    EXPECT_EQ(plan.steps.size(), a.size() + b.size()) << seed;
    EXPECT_LE(plan.peak_combined_elems, spec.glb_elems()) << seed;
    EXPECT_LE(plan.overlapped_latency_cycles,
              plan.serialized_latency_cycles + 1e-6)
        << seed;
  }
}

TEST(IntegrationExtras, CompressionOnExtras) {
  const auto net = model::zoo::vgg16();
  const auto spec = spec_kb(128);
  const auto plan =
      core::MemoryManager(spec).plan(net, Objective::kAccesses);
  // VGG16's traffic is almost all weights: compressing only the filters
  // must capture nearly the whole saving of compressing everything.
  const auto filters_only = core::apply_compression(
      plan, net, {.ifmap_ratio = 1.0, .filter_ratio = 0.5, .ofmap_ratio = 1.0});
  const auto everything = core::apply_compression(
      plan, net, {.ifmap_ratio = 0.5, .filter_ratio = 0.5, .ofmap_ratio = 0.5});
  const double saving_filters = filters_only.raw_bytes - filters_only.dram_bytes;
  const double saving_all = everything.raw_bytes - everything.dram_bytes;
  EXPECT_GT(saving_filters, 0.75 * saving_all);
}

TEST(IntegrationExtras, TracedBaselineAgreesOnEveryPaperModel) {
  const auto spec = spec_kb(64);
  for (const auto& net : model::zoo::all_models()) {
    const scalesim::Simulator sim(
        spec, scalesim::BufferPartition{.ifmap_fraction = 0.25});
    const auto analytic = sim.run(net);
    const auto traced = sim.run_traced(net);
    EXPECT_EQ(traced.aggregate.total_accesses, analytic.total_accesses)
        << net.name();
    EXPECT_EQ(traced.aggregate.total_cycles, analytic.total_cycles)
        << net.name();
  }
}

TEST(IntegrationExtras, SensitivityKneePrecedesTheInterlayerPayoff) {
  // The Het curve's knee (small buffers) comes before the inter-layer
  // payoff region (large buffers): the two mechanisms occupy opposite
  // ends of the size axis, which is exactly the paper's Figure 5 vs
  // Figure 11 contrast.
  const auto net = model::zoo::mnasnet();
  dse::SweepConfig config;
  for (count_t kb = 32; kb <= 1024; kb *= 2) {
    config.glb_bytes.push_back(util::kib(kb));
  }
  const auto points = dse::run_sweep(net, config);
  const count_t knee = dse::knee_glb_bytes(points);

  core::ManagerOptions inter;
  inter.interlayer_reuse = true;
  count_t payoff = 0;
  for (count_t kb = 32; kb <= 1024; kb *= 2) {
    const auto spec = spec_kb(kb);
    const auto off = core::MemoryManager(spec).plan(net, Objective::kAccesses);
    const auto on =
        core::MemoryManager(spec, inter).plan(net, Objective::kAccesses);
    if (static_cast<double>(on.total_accesses()) <
        0.7 * static_cast<double>(off.total_accesses())) {
      payoff = util::kib(kb);
      break;
    }
  }
  ASSERT_GT(payoff, 0u);
  EXPECT_LT(knee, payoff);
}

}  // namespace
}  // namespace rainbow
