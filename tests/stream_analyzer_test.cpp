// Unit tests for the stream analyzer library: the abstract machine's
// clean-path metrics, the streaming-ifmap leniency, inter-layer hand-off
// semantics (kind change, size change in either direction), structural
// shape checks, and the plan cross-check happy path.
#include <gtest/gtest.h>

#include <utility>

#include "analysis/stream_analyzer.hpp"
#include "codegen/lower.hpp"
#include "core/manager.hpp"
#include "model/zoo/zoo.hpp"

namespace rainbow::analysis {
namespace {

using codegen::Command;
using codegen::DataKind;
using codegen::LayerProgram;
using codegen::Program;
using validate::Code;

Program empty_program(count_t capacity_bytes) {
  Program program;
  program.model = "unit";
  program.spec = arch::paper_spec(util::kib(64));
  program.spec.glb_bytes = capacity_bytes;  // 8-bit data: elements == bytes
  return program;
}

LayerProgram simple_layer(std::size_t index, const char* name) {
  LayerProgram layer;
  layer.layer_index = index;
  layer.layer_name = name;
  return layer;
}

TEST(StreamAnalyzer, CleanSingleLayerMetrics) {
  Program program = empty_program(64);
  LayerProgram layer = simple_layer(0, "l0");
  layer.commands = {
      {.op = Command::Op::kAlloc, .region = 0, .kind = DataKind::kIfmap,
       .elems = 16},
      {.op = Command::Op::kAlloc, .region = 1, .kind = DataKind::kFilter,
       .elems = 8},
      {.op = Command::Op::kAlloc, .region = 2, .kind = DataKind::kOfmap,
       .elems = 8},
      {.op = Command::Op::kLoad, .region = 0, .kind = DataKind::kIfmap,
       .elems = 16},
      {.op = Command::Op::kLoad, .region = 1, .kind = DataKind::kFilter,
       .elems = 8},
      {.op = Command::Op::kCompute, .macs = 128},
      {.op = Command::Op::kStore, .region = 2, .kind = DataKind::kOfmap,
       .elems = 8},
      {.op = Command::Op::kBarrier},
      {.op = Command::Op::kFree, .region = 0, .kind = DataKind::kIfmap,
       .elems = 16},
      {.op = Command::Op::kFree, .region = 1, .kind = DataKind::kFilter,
       .elems = 8},
      {.op = Command::Op::kFree, .region = 2, .kind = DataKind::kOfmap,
       .elems = 8},
  };
  program.layers.push_back(std::move(layer));

  const AnalysisResult result = analyze_stream(program);
  EXPECT_TRUE(result.clean()) << result.report.summary();
  EXPECT_EQ(result.capacity_elems, 64u);
  EXPECT_EQ(result.peak_live_elems, 32u);
  EXPECT_EQ(result.glb_peak_elems, 32u);
  EXPECT_EQ(result.regions, 3u);
  EXPECT_EQ(result.commands, 11u);
  ASSERT_EQ(result.layers.size(), 1u);
  const LayerAnalysis& la = result.layers[0];
  EXPECT_EQ(la.barriers, 1u);
  EXPECT_EQ(la.peak_live_elems, 32u);
  EXPECT_EQ(la.sums.ifmap_loads, 16u);
  EXPECT_EQ(la.sums.filter_loads, 8u);
  EXPECT_EQ(la.sums.ofmap_stores, 8u);
  EXPECT_EQ(la.sums.macs, 128u);
  ASSERT_EQ(la.allocs.size(), 3u);
  EXPECT_EQ(la.allocs[0], (std::pair{DataKind::kIfmap, count_t{16}}));
}

TEST(StreamAnalyzer, StreamingIfmapLoadMayExceedItsWindow) {
  // A sliding-window ifmap region retains less than what streams through
  // it; loads are bounded by the scratchpad, not the window (the same
  // leniency the interpreter applies).
  Program program = empty_program(64);
  LayerProgram layer = simple_layer(0, "l0");
  layer.commands = {
      {.op = Command::Op::kAlloc, .region = 0, .kind = DataKind::kIfmap,
       .elems = 16},
      {.op = Command::Op::kLoad, .region = 0, .kind = DataKind::kIfmap,
       .elems = 60},
      {.op = Command::Op::kCompute, .macs = 10},
      {.op = Command::Op::kBarrier},
      {.op = Command::Op::kFree, .region = 0, .kind = DataKind::kIfmap,
       .elems = 16},
  };
  program.layers.push_back(std::move(layer));
  EXPECT_TRUE(analyze_stream(program).clean());

  // One element past the scratchpad is a genuine overflow.
  program.layers[0].commands[1].elems = 65;
  const AnalysisResult result = analyze_stream(program);
  EXPECT_TRUE(result.report.has(Code::kStreamTransferOverflow));
}

/// Two layers linked by a hand-off: layer 0 keeps its ofmap, layer 1
/// consumes it as an inherited ifmap and frees it with its own view of
/// the window size.
Program handoff_program(count_t consumer_free_elems) {
  Program program = empty_program(64);
  LayerProgram first = simple_layer(0, "producer");
  first.commands = {
      {.op = Command::Op::kAlloc, .region = 0, .kind = DataKind::kIfmap,
       .elems = 16},
      {.op = Command::Op::kAlloc, .region = 1, .kind = DataKind::kFilter,
       .elems = 8},
      {.op = Command::Op::kAlloc, .region = 2, .kind = DataKind::kOfmap,
       .elems = 8},
      {.op = Command::Op::kLoad, .region = 0, .kind = DataKind::kIfmap,
       .elems = 16},
      {.op = Command::Op::kLoad, .region = 1, .kind = DataKind::kFilter,
       .elems = 8},
      {.op = Command::Op::kCompute, .macs = 64},
      {.op = Command::Op::kBarrier},
      {.op = Command::Op::kFree, .region = 0, .kind = DataKind::kIfmap,
       .elems = 16},
      {.op = Command::Op::kFree, .region = 1, .kind = DataKind::kFilter,
       .elems = 8},
      // region 2 stays resident for the next layer
  };
  LayerProgram second = simple_layer(1, "consumer");
  second.commands = {
      {.op = Command::Op::kAlloc, .region = 3, .kind = DataKind::kFilter,
       .elems = 8},
      {.op = Command::Op::kAlloc, .region = 4, .kind = DataKind::kOfmap,
       .elems = 8},
      {.op = Command::Op::kLoad, .region = 3, .kind = DataKind::kFilter,
       .elems = 8},
      {.op = Command::Op::kCompute, .macs = 64},
      {.op = Command::Op::kStore, .region = 4, .kind = DataKind::kOfmap,
       .elems = 8},
      {.op = Command::Op::kBarrier},
      {.op = Command::Op::kFree, .region = 2, .kind = DataKind::kIfmap,
       .elems = consumer_free_elems},
      {.op = Command::Op::kFree, .region = 3, .kind = DataKind::kFilter,
       .elems = 8},
      {.op = Command::Op::kFree, .region = 4, .kind = DataKind::kOfmap,
       .elems = 8},
  };
  program.layers.push_back(std::move(first));
  program.layers.push_back(std::move(second));
  return program;
}

TEST(StreamAnalyzer, HandoffFreeToleratesEitherResize) {
  // Exact, shrunk, and grown consumer views are all sanctioned: zoo
  // trunks resize maps between layers (V012), and the allocator frees
  // the whole region regardless of the elems the free names.
  for (const count_t elems : {count_t{8}, count_t{4}, count_t{100}}) {
    const AnalysisResult result = analyze_stream(handoff_program(elems));
    EXPECT_TRUE(result.clean())
        << "free elems " << elems << "\n" << result.report.summary();
    EXPECT_EQ(result.peak_live_elems, 32u);
  }
}

TEST(StreamAnalyzer, HandoffSurvivorPastItsWindowIsALeak) {
  // Keep the inherited region past its consumer: the hand-off window is
  // exactly one layer boundary.
  Program program = handoff_program(8);
  auto& cmds = program.layers[1].commands;
  cmds.erase(cmds.begin() + 6);  // drop the hand-off free
  const AnalysisResult result = analyze_stream(program);
  EXPECT_TRUE(result.report.has(Code::kStreamRegionLeak));
}

TEST(StreamAnalyzer, MalformedShapesAreReported) {
  Program negative = empty_program(64);
  LayerProgram layer = simple_layer(0, "l0");
  layer.commands = {
      {.op = Command::Op::kAlloc, .region = -3, .kind = DataKind::kIfmap,
       .elems = 16},
      {.op = Command::Op::kBarrier},
  };
  negative.layers.push_back(std::move(layer));
  EXPECT_TRUE(
      analyze_stream(negative).report.has(Code::kStreamMalformed));

  Program zero_macs = empty_program(64);
  LayerProgram zl = simple_layer(0, "l0");
  zl.commands = {
      {.op = Command::Op::kCompute, .macs = 0},
      {.op = Command::Op::kBarrier},
  };
  zero_macs.layers.push_back(std::move(zl));
  EXPECT_TRUE(
      analyze_stream(zero_macs).report.has(Code::kStreamMalformed));
}

TEST(StreamAnalyzer, LayerCountMismatchIsASingleProgramFinding) {
  const model::Network net = model::zoo::mobilenet();
  const core::MemoryManager manager(arch::paper_spec(util::kib(128)));
  const auto plan = manager.plan(net, core::Objective::kAccesses);
  codegen::Program program = codegen::lower(plan, net);
  program.layers.pop_back();
  const AnalysisResult result = analyze_lowering(program, plan, net);
  EXPECT_EQ(result.report.count(Code::kStreamFootprintMismatch), 1u);
}

TEST(StreamAnalyzer, LoweredPlanCrossChecksClean) {
  const model::Network net = model::zoo::resnet18();
  core::ManagerOptions options;
  options.interlayer_reuse = true;
  const core::MemoryManager manager(arch::paper_spec(util::kib(1024)),
                                    options);
  const auto plan = manager.plan(net, core::Objective::kLatency);
  const codegen::Program program = codegen::lower(plan, net);
  const AnalysisResult result = analyze_lowering(program, plan, net);
  EXPECT_TRUE(result.clean()) << result.report.summary();
  EXPECT_LE(result.peak_live_elems, result.capacity_elems);
  EXPECT_LE(result.peak_live_elems, result.glb_peak_elems);
}

}  // namespace
}  // namespace rainbow::analysis
