// Unit tests for the tile schedules: the unrolled loop nests must conserve
// exactly the traffic and MAC totals the closed-form estimator predicts,
// for every policy and layer kind.
#include <gtest/gtest.h>

#include "arch/accelerator.hpp"
#include "core/estimator.hpp"
#include "engine/schedule.hpp"

namespace rainbow::engine {
namespace {

using core::Estimator;
using core::Policy;
using core::PolicyChoice;
using model::Layer;
using model::make_conv;
using model::make_depthwise;
using model::make_fully_connected;
using model::make_pointwise;

const Estimator& estimator() {
  static const Estimator est(arch::paper_spec(util::kib(1024)));
  return est;
}

void expect_conservation(const Layer& layer, const PolicyChoice& choice) {
  const auto schedule = build_schedule(layer, choice);
  const ScheduleTotals sums = totals(schedule);
  const auto traffic = estimator().traffic(layer, choice);
  EXPECT_EQ(sums.ifmap_loads, traffic.ifmap_reads)
      << layer.name() << " " << core::short_label(choice.policy, false);
  EXPECT_EQ(sums.filter_loads, traffic.filter_reads)
      << layer.name() << " " << core::short_label(choice.policy, false);
  EXPECT_EQ(sums.ofmap_stores, traffic.ofmap_writes)
      << layer.name() << " " << core::short_label(choice.policy, false);
  EXPECT_EQ(sums.macs, layer.macs())
      << layer.name() << " " << core::short_label(choice.policy, false);
}

std::vector<Layer> sample_layers() {
  return {
      make_conv("conv", 14, 14, 32, 3, 3, 64, 1, 1),
      make_conv("strided", 28, 28, 16, 5, 5, 24, 2, 2),
      make_conv("conv1", 56, 56, 3, 7, 7, 64, 2, 3),
      make_depthwise("dw", 28, 28, 32, 3, 3, 1, 1),
      make_depthwise("dw_s2", 28, 28, 32, 3, 3, 2, 1),
      make_pointwise("pw", 28, 28, 32, 64),
      make_fully_connected("fc", 256, 100),
  };
}

TEST(Schedule, ConservesSimplePolicies) {
  for (const Layer& layer : sample_layers()) {
    for (Policy p : {Policy::kIntraLayer, Policy::kIfmapReuse,
                     Policy::kFilterReuse, Policy::kPerChannel}) {
      expect_conservation(layer, PolicyChoice{.policy = p});
    }
  }
}

TEST(Schedule, ConservesPartialPolicies) {
  for (const Layer& layer : sample_layers()) {
    const int units = layer.is_depthwise() ? layer.channels() : layer.filters();
    for (int n : {1, 3, units / 2 > 0 ? units / 2 : 1}) {
      if (n < 1 || n > units) {
        continue;
      }
      expect_conservation(layer, PolicyChoice{.policy = Policy::kPartialIfmap,
                                              .filter_block = n});
      expect_conservation(layer,
                          PolicyChoice{.policy = Policy::kPartialPerChannel,
                                       .filter_block = n});
    }
  }
}

TEST(Schedule, ConservesFallbackTiling) {
  for (const Layer& layer : sample_layers()) {
    const int units = layer.is_depthwise() ? layer.channels() : layer.filters();
    for (int n : {1, units / 3 > 0 ? units / 3 : 1}) {
      for (int r : {1, 2, layer.ofmap_h()}) {
        if (n < 1 || n > units || r < 1 || r > layer.ofmap_h()) {
          continue;
        }
        expect_conservation(layer, PolicyChoice{.policy = Policy::kFallbackTiled,
                                                .filter_block = n,
                                                .row_stripe = r});
      }
    }
  }
}

TEST(Schedule, TileCounts) {
  const Layer conv = make_conv("c", 14, 14, 32, 3, 3, 64, 1, 1);
  EXPECT_EQ(build_schedule(conv, {.policy = Policy::kIntraLayer}).size(), 1u);
  EXPECT_EQ(build_schedule(conv, {.policy = Policy::kIfmapReuse}).size(), 14u);
  EXPECT_EQ(build_schedule(conv, {.policy = Policy::kFilterReuse}).size(), 64u);
  EXPECT_EQ(build_schedule(conv, {.policy = Policy::kPerChannel}).size(),
            32u * 14);
  // P4 with n=16: 4 blocks x 14 rows.
  EXPECT_EQ(build_schedule(conv, {.policy = Policy::kPartialIfmap,
                                  .filter_block = 16})
                .size(),
            4u * 14);
}

TEST(Schedule, FirstTileCarriesInitialWorkingSet) {
  const Layer conv = make_conv("c", 14, 14, 32, 3, 3, 64, 1, 1);
  const auto p1 = build_schedule(conv, {.policy = Policy::kIfmapReuse});
  // First tile: all filters + F_H window rows; later tiles: S rows only.
  EXPECT_EQ(p1.front().load_filter, conv.filter_elems());
  EXPECT_EQ(p1.front().load_ifmap,
            3u * static_cast<count_t>(conv.padded_ifmap_w()) * 32);
  EXPECT_EQ(p1[1].load_filter, 0u);
  EXPECT_EQ(p1[1].load_ifmap,
            1u * static_cast<count_t>(conv.padded_ifmap_w()) * 32);
}

TEST(Schedule, PerChannelDrainsOfmapAtTheEnd) {
  const Layer conv = make_conv("c", 14, 14, 32, 3, 3, 64, 1, 1);
  const auto p3 = build_schedule(conv, {.policy = Policy::kPerChannel});
  count_t stores_before_last = 0;
  for (std::size_t i = 0; i + 1 < p3.size(); ++i) {
    stores_before_last += p3[i].store_ofmap;
  }
  EXPECT_EQ(stores_before_last, 0u);
  EXPECT_EQ(p3.back().store_ofmap, conv.ofmap_elems());
}

TEST(Schedule, InterlayerAdjustZeroesStreams) {
  const Layer conv = make_conv("c", 14, 14, 32, 3, 3, 64, 1, 1);
  const core::InterlayerAdjust adjust{.ifmap_resident = true,
                                      .keep_ofmap = true};
  const auto schedule =
      build_schedule(conv, {.policy = Policy::kIfmapReuse}, adjust);
  const ScheduleTotals sums = totals(schedule);
  EXPECT_EQ(sums.ifmap_loads, 0u);
  EXPECT_EQ(sums.ofmap_stores, 0u);
  EXPECT_EQ(sums.filter_loads, conv.filter_elems());
  EXPECT_EQ(sums.macs, conv.macs());
}

TEST(Schedule, MacsDistributedAcrossTiles) {
  const Layer conv = make_conv("c", 14, 14, 32, 3, 3, 64, 1, 1);
  const auto schedule = build_schedule(conv, {.policy = Policy::kIfmapReuse});
  // Even split with the remainder on the last tile: no tile idles.
  for (const TileOp& op : schedule) {
    EXPECT_GT(op.macs, 0u);
  }
}

TEST(Schedule, BadParametersThrow) {
  const Layer conv = make_conv("c", 14, 14, 32, 3, 3, 64, 1, 1);
  EXPECT_THROW(build_schedule(conv, {.policy = Policy::kFallbackTiled,
                                     .filter_block = 1,
                                     .row_stripe = 0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace rainbow::engine
