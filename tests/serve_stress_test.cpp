// Concurrency stress for the serving stack (run under TSan via the
// `concurrency` label): many threads planning the same and different zoo
// models through one shared MemoryManager + EvalCache, and through one
// PlanningService — plans must stay byte-identical to the single-threaded
// reference, cache counters must balance (no lost updates), and
// single-flight must never hand different bytes to coalesced requests.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/eval_cache.hpp"
#include "core/manager.hpp"
#include "core/plan_io.hpp"
#include "model/parser.hpp"
#include "model/zoo/zoo.hpp"
#include "serve/service.hpp"

namespace rainbow::serve {
namespace {

constexpr int kThreads = 8;
constexpr int kItersPerThread = 3;

void expect_balanced(const core::EvalCacheStats& stats) {
  // The cache's counter invariants: any violation means an update was
  // lost in a race.
  EXPECT_EQ(stats.hits + stats.misses, stats.lookups);
  EXPECT_EQ(stats.inserts - stats.evictions, stats.entries);
}

TEST(ServeStress, SharedManagerAndCacheYieldIdenticalPlans) {
  const arch::AcceleratorSpec spec = arch::paper_spec(64 * 1024);
  // Single-threaded references, one cold manager each.
  std::map<std::string, std::string> references;
  for (const std::string& name : model::zoo::model_names()) {
    core::ManagerOptions options;
    options.analyzer.eval_cache = std::make_shared<core::EvalCache>();
    const core::MemoryManager manager(spec, options);
    references[name] = core::serialize_plan(
        manager.plan(model::zoo::by_name(name), core::Objective::kAccesses));
  }

  // One manager + one cache shared by every thread; each thread walks the
  // zoo from a different offset so the same model is planned concurrently
  // by several threads while others plan different models.
  core::ManagerOptions options;
  const auto cache = std::make_shared<core::EvalCache>();
  options.analyzer.eval_cache = cache;
  const core::MemoryManager manager(spec, options);
  const std::vector<std::string> names = model::zoo::model_names();

  std::vector<std::thread> threads;
  std::vector<std::string> failures(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int k = 0; k < kItersPerThread; ++k) {
        const std::string& name =
            names[static_cast<std::size_t>(t + k) % names.size()];
        const std::string got = core::serialize_plan(manager.plan(
            model::zoo::by_name(name), core::Objective::kAccesses));
        if (got != references[name]) {
          failures[t] = name + ": plan diverged under shared cache";
          return;
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (const std::string& failure : failures) {
    EXPECT_EQ(failure, "");
  }
  const core::EvalCacheStats stats = cache->stats();
  expect_balanced(stats);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_EQ(stats.approx_bytes, cache->approx_bytes());
}

TEST(ServeStress, ServiceSingleFlightKeepsResponsesIdentical) {
  PlanningService service({/*preload_zoo=*/true});
  Request request;
  request.verb = "plan";
  request.headers["model"] = "resnet18";

  // Reference from a quiet service call.
  const Response reference = service.handle(request);
  ASSERT_TRUE(reference.ok) << reference.get("message");

  std::vector<std::thread> threads;
  std::vector<std::string> failures(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int k = 0; k < kItersPerThread; ++k) {
        const Response response = service.handle(request);
        if (!response.ok) {
          failures[t] = response.get("message");
          return;
        }
        if (response.body != reference.body) {
          failures[t] = "coalesced response bytes diverged";
          return;
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (const std::string& failure : failures) {
    EXPECT_EQ(failure, "");
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.plan_requests,
            static_cast<std::uint64_t>(kThreads * kItersPerThread + 1));
  EXPECT_EQ(stats.errors, 0u);
  // Every plan request was answered: owners + coalesced followers account
  // for all of them (coalesced may be zero on a fast machine, never
  // negative or over-counted).
  EXPECT_LE(stats.coalesced, stats.plan_requests);
}

TEST(ServeStress, MixedVerbsAgainstOneService) {
  PlanningService service({/*preload_zoo=*/true});
  const std::vector<std::string> names = model::zoo::model_names();

  // Per-model references computed through the service itself, serially.
  std::map<std::string, std::string> references;
  for (const std::string& name : names) {
    Request request;
    request.verb = "plan";
    request.headers["model"] = name;
    request.headers["objective"] = "latency";
    const Response response = service.handle(request);
    ASSERT_TRUE(response.ok) << response.get("message");
    references[name] = response.body;
  }

  std::vector<std::thread> threads;
  std::vector<std::string> failures(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int k = 0; k < kItersPerThread; ++k) {
        const std::string& name =
            names[static_cast<std::size_t>(t + k) % names.size()];
        Request plan;
        plan.verb = "plan";
        plan.headers["model"] = name;
        plan.headers["objective"] = "latency";
        const Response planned = service.handle(plan);
        if (!planned.ok || planned.body != references[name]) {
          failures[t] = name + ": plan diverged";
          return;
        }
        Request stats;
        stats.verb = "stats";
        if (!service.handle(stats).ok) {
          failures[t] = "stats failed";
          return;
        }
        Request list;
        list.verb = "list";
        if (!service.handle(list).ok) {
          failures[t] = "list failed";
          return;
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (const std::string& failure : failures) {
    EXPECT_EQ(failure, "");
  }
  // Per-model cache counters must balance after the hammering.
  for (const RegistrySnapshotRow& row : service.registry().rows()) {
    expect_balanced(row.cache);
  }
  EXPECT_EQ(service.stats().errors, 0u);
}

TEST(ServeStress, ConcurrentUploadEvictAndPlan) {
  PlanningService service({/*preload_zoo=*/true});
  const std::string body =
      model::serialize_network(model::zoo::by_name("mobilenet"));

  std::vector<std::thread> threads;
  std::vector<std::string> failures(4);
  // Two threads continuously replace/evict a scratch model while two plan
  // a stable one: registry churn must never corrupt unrelated planning.
  Request plan;
  plan.verb = "plan";
  plan.headers["model"] = "resnet18";
  const Response reference = service.handle(plan);
  ASSERT_TRUE(reference.ok);

  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      for (int k = 0; k < 8; ++k) {
        Request upload;
        upload.verb = "upload";
        upload.headers["name"] = "scratch";
        upload.headers["replace"] = "1";
        upload.body = body;
        if (!service.handle(upload).ok) {
          failures[t] = "upload failed";
          return;
        }
        Request evict;
        evict.verb = "evict";
        evict.headers["model"] = "scratch";
        service.handle(evict);  // may race the other evictor; both fine
      }
    });
  }
  for (int t = 2; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int k = 0; k < 8; ++k) {
        const Response response = service.handle(plan);
        if (!response.ok || response.body != reference.body) {
          failures[t] = "plan diverged during registry churn";
          return;
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (const std::string& failure : failures) {
    EXPECT_EQ(failure, "");
  }
}

TEST(ServeStress, SnapshotReadsAreNeverTornDuringChurn) {
  // RCU contract of the registry: a reader loads either the snapshot from
  // before a writer published or the one from after — never a torn mix.
  // Writers alternate a scratch model between two networks with different
  // layer counts; readers assert every snapshot they load is one of the
  // two consistent states (or the pre-upload state) and that a resolved
  // entry keeps working even if it is evicted mid-use.  Run under TSan via
  // the `concurrency` label.
  ModelRegistry registry;
  registry.preload_zoo();
  const std::size_t baseline = registry.size();
  const model::Network small = model::zoo::by_name("mobilenet");
  const model::Network large = model::zoo::by_name("resnet18");
  const std::size_t small_layers = small.size();
  const std::size_t large_layers = large.size();
  ASSERT_NE(small_layers, large_layers);

  constexpr int kWriters = 2;
  constexpr int kReaders = 6;
  constexpr int kChurns = 200;
  std::vector<std::thread> threads;
  std::vector<std::string> failures(kWriters + kReaders);

  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      for (int k = 0; k < kChurns; ++k) {
        registry.register_model("scratch", k % 2 == 0 ? small : large,
                                /*builtin=*/false, /*replace=*/true);
        if (k % 8 == 7) {
          registry.evict("scratch");  // may race the other writer; fine
        }
      }
      (void)t;
    });
  }
  for (int t = kWriters; t < kWriters + kReaders; ++t) {
    threads.emplace_back([&, t] {
      for (int k = 0; k < kChurns; ++k) {
        const std::shared_ptr<const RegistrySnapshot> snapshot =
            registry.read();
        // Structural consistency: the zoo entries are always all present,
        // and `scratch` is absent or exactly one of the two networks.
        if (snapshot->models.size() != baseline &&
            snapshot->models.size() != baseline + 1) {
          failures[t] = "torn snapshot: unexpected model count";
          return;
        }
        const std::shared_ptr<const ModelEntry> scratch =
            snapshot->find_model("scratch");
        if (scratch && scratch->network.size() != small_layers &&
            scratch->network.size() != large_layers) {
          failures[t] = "torn snapshot: half-written network";
          return;
        }
        // A resolved entry survives eviction: its cache stays usable.
        if (scratch) {
          expect_balanced(scratch->cache->stats());
        }
        if (!snapshot->find_model("resnet18")) {
          failures[t] = "torn snapshot: builtin vanished";
          return;
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (const std::string& failure : failures) {
    EXPECT_EQ(failure, "");
  }
}

}  // namespace
}  // namespace rainbow::serve
