// Property test for certify_reorder: across 256 seeds, every random
// linear extension of the original stream's semantic dependences
// (kDep data/lifetime + kSync sequencer/barrier edges) must certify, and
// every permutation that inverts one such edge must be rejected with
// R007.  The fixture is a real mobilenet lowering so the constraint set
// is the one production streams carry.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "analysis/race.hpp"
#include "codegen/lower.hpp"
#include "core/manager.hpp"
#include "model/zoo/zoo.hpp"

namespace rainbow::analysis {
namespace {

using codegen::Command;
using codegen::Program;
using validate::Code;

constexpr int kSeeds = 256;

/// Intra-layer semantic constraint: command `from` must stay before
/// command `to` within layer `layer`.  Cross-layer edges are satisfied by
/// construction (certify only permutes within a layer).
struct Constraint {
  std::size_t layer;
  std::size_t from;
  std::size_t to;
};

struct Fixture {
  Program program;
  std::vector<Constraint> constraints;
  /// Per layer: adjacency + indegree over command indices, for the
  /// randomized-Kahn linear extension generator.
  std::vector<std::vector<std::vector<std::size_t>>> adj;

  Fixture() {
    const model::Network net = model::zoo::mobilenet();
    const core::MemoryManager manager(arch::paper_spec(util::kib(256)));
    const core::ExecutionPlan plan =
        manager.plan(net, core::Objective::kAccesses);
    program = codegen::lower(plan, net);
    // A handful of layers keeps 512 certify calls (each rebuilding the
    // original's graph) fast while preserving real constraint structure.
    program.layers.resize(4);
    const DepGraph graph = DepGraph::build(program);
    adj.resize(program.layers.size());
    for (std::size_t l = 0; l < program.layers.size(); ++l) {
      adj[l].resize(program.layers[l].commands.size());
    }
    for (const DepEdge& e : graph.edges()) {
      if (e.kind != DepEdgeKind::kDep && e.kind != DepEdgeKind::kSync) {
        continue;
      }
      const DepNode& from = graph.nodes()[e.from];
      const DepNode& to = graph.nodes()[e.to];
      if (from.layer != to.layer) {
        continue;
      }
      constraints.push_back({from.layer, from.command, to.command});
      adj[from.layer][from.command].push_back(to.command);
    }
  }

  /// Random linear extension of one layer's constraints.
  [[nodiscard]] std::vector<std::size_t> random_extension(
      std::size_t layer, std::mt19937& rng) const {
    const std::size_t n = program.layers[layer].commands.size();
    std::vector<std::size_t> indegree(n, 0);
    for (const auto& outs : adj[layer]) {
      for (const std::size_t to : outs) {
        ++indegree[to];
      }
    }
    std::vector<std::size_t> ready;
    for (std::size_t i = 0; i < n; ++i) {
      if (indegree[i] == 0) {
        ready.push_back(i);
      }
    }
    std::vector<std::size_t> order;
    order.reserve(n);
    while (!ready.empty()) {
      std::uniform_int_distribution<std::size_t> pick(0, ready.size() - 1);
      const std::size_t at = pick(rng);
      const std::size_t u = ready[at];
      ready[at] = ready.back();
      ready.pop_back();
      order.push_back(u);
      for (const std::size_t v : adj[layer][u]) {
        if (--indegree[v] == 0) {
          ready.push_back(v);
        }
      }
    }
    EXPECT_EQ(order.size(), n) << "constraint set must be acyclic";
    return order;
  }
};

TEST(CertifyProperty, AcceptsRandomLinearExtensions) {
  const Fixture fixture;
  for (int seed = 0; seed < kSeeds; ++seed) {
    std::mt19937 rng(static_cast<std::uint32_t>(seed));
    Program candidate = fixture.program;
    for (std::size_t l = 0; l < candidate.layers.size(); ++l) {
      const std::vector<std::size_t> order = fixture.random_extension(l, rng);
      std::vector<Command> permuted;
      permuted.reserve(order.size());
      for (const std::size_t i : order) {
        permuted.push_back(fixture.program.layers[l].commands[i]);
      }
      candidate.layers[l].commands = std::move(permuted);
    }
    const CertifyResult result = certify_reorder(fixture.program, candidate);
    EXPECT_TRUE(result.ok) << "seed " << seed << "\n"
                           << result.report.summary();
    EXPECT_EQ(result.violations, 0u) << "seed " << seed;
  }
}

TEST(CertifyProperty, RejectsEveryInvertedDependence) {
  const Fixture fixture;
  ASSERT_FALSE(fixture.constraints.empty());
  for (int seed = 0; seed < kSeeds; ++seed) {
    std::mt19937 rng(static_cast<std::uint32_t>(seed) ^ 0x9e3779b9u);
    std::uniform_int_distribution<std::size_t> pick(
        0, fixture.constraints.size() - 1);
    const Constraint& c = fixture.constraints[pick(rng)];
    Program candidate = fixture.program;
    auto& cmds = candidate.layers[c.layer].commands;
    // Move the dependent command to just before its prerequisite: exactly
    // that dependence is inverted (plus possibly others — either way the
    // candidate is illegal).
    Command moved = cmds[c.to];
    cmds.erase(cmds.begin() + static_cast<std::ptrdiff_t>(c.to));
    cmds.insert(cmds.begin() + static_cast<std::ptrdiff_t>(c.from), moved);
    const CertifyResult result = certify_reorder(fixture.program, candidate);
    EXPECT_FALSE(result.ok) << "seed " << seed << " layer " << c.layer
                            << " edge " << c.from << "->" << c.to;
    EXPECT_GE(result.violations, 1u) << "seed " << seed;
    EXPECT_GE(result.report.count(Code::kRaceReorderViolation), 1u)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace rainbow::analysis
