// Unit tests for the Layer hyperparameter model (Table 1): derived output
// dimensions, effective padded extents, per-data-type sizes, MAC counts,
// and validation, across all five layer kinds.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "model/layer.hpp"

namespace rainbow::model {
namespace {

// ResNet18 conv1: 224x224x3, 7x7, 64 filters, stride 2, pad 3 -> 112x112x64.
Layer resnet_conv1() { return make_conv("conv1", 224, 224, 3, 7, 7, 64, 2, 3); }

TEST(LayerKind, RoundTripsThroughStrings) {
  for (LayerKind kind : {LayerKind::kConv, LayerKind::kDepthwise,
                         LayerKind::kPointwise, LayerKind::kFullyConnected,
                         LayerKind::kProjection}) {
    EXPECT_EQ(layer_kind_from_string(to_string(kind)), kind);
  }
}

TEST(LayerKind, UnknownCodeThrows) {
  EXPECT_THROW((void)layer_kind_from_string("XX"), std::invalid_argument);
}

TEST(Layer, ConvOutputDims) {
  const Layer l = resnet_conv1();
  EXPECT_EQ(l.ofmap_h(), 112);
  EXPECT_EQ(l.ofmap_w(), 112);
  EXPECT_EQ(l.ofmap_channels(), 64);
}

TEST(Layer, Conv3x3SamePadding) {
  const Layer l = make_conv("c", 56, 56, 64, 3, 3, 64, 1, 1);
  EXPECT_EQ(l.ofmap_h(), 56);
  EXPECT_EQ(l.ofmap_w(), 56);
}

TEST(Layer, StridedConvHalvesResolution) {
  const Layer l = make_conv("c", 56, 56, 64, 3, 3, 128, 2, 1);
  EXPECT_EQ(l.ofmap_h(), 28);
  EXPECT_EQ(l.ofmap_w(), 28);
}

TEST(Layer, PaddedExtentIsConsumedSpan) {
  // conv1: O=112, S=2, F=7 -> consumed span (112-1)*2 + 7 = 229.
  const Layer l = resnet_conv1();
  EXPECT_EQ(l.padded_ifmap_h(), 229);
  EXPECT_EQ(l.padded_ifmap_w(), 229);
}

TEST(Layer, PaddedExtentForSameConv) {
  // 3x3 s1 "same": consumed span (56-1)*1 + 3 = 58 = 56 + 2*1.
  const Layer l = make_conv("c", 56, 56, 64, 3, 3, 64, 1, 1);
  EXPECT_EQ(l.padded_ifmap_h(), 58);
}

TEST(Layer, PaddedExtentCanFallShortOfInput) {
  // I=5, F=2, S=2, P=0: O=2, consumed span (2-1)*2+2 = 4 < 5; the last row
  // is never touched and the schedules never stream it.
  const Layer l = make_conv("c", 5, 5, 1, 2, 2, 1, 2, 0);
  EXPECT_EQ(l.ofmap_h(), 2);
  EXPECT_EQ(l.padded_ifmap_h(), 4);
}

TEST(Layer, ElementCounts) {
  const Layer l = resnet_conv1();
  EXPECT_EQ(l.ifmap_elems(), 224u * 224 * 3);
  EXPECT_EQ(l.padded_ifmap_elems(), 229u * 229 * 3);
  EXPECT_EQ(l.filter_elems(), 7u * 7 * 3 * 64);
  EXPECT_EQ(l.single_filter_elems(), 7u * 7 * 3);
  EXPECT_EQ(l.ofmap_elems(), 112u * 112 * 64);
}

TEST(Layer, MacCount) {
  const Layer l = resnet_conv1();
  // MACs = ofmap volume x filter volume per output.
  EXPECT_EQ(l.macs(), 112u * 112 * 64 * 7 * 7 * 3);
}

TEST(Layer, DepthwiseSemantics) {
  const Layer l = make_depthwise("dw", 112, 112, 32, 3, 3, 1, 1);
  EXPECT_TRUE(l.is_depthwise());
  EXPECT_EQ(l.ofmap_channels(), 32);          // C_O = C_I
  EXPECT_EQ(l.filter_elems(), 3u * 3 * 32);   // one 2D filter per channel
  EXPECT_EQ(l.single_filter_elems(), 9u);
  EXPECT_EQ(l.macs(), 112u * 112 * 32 * 9);   // no cross-channel reduction
}

TEST(Layer, DepthwiseRequiresFiltersEqualChannels) {
  Layer::Params p;
  p.kind = LayerKind::kDepthwise;
  p.name = "bad";
  p.ifmap_h = p.ifmap_w = 8;
  p.channels = 4;
  p.filter_h = p.filter_w = 3;
  p.filters = 8;  // != channels
  p.padding = 1;
  EXPECT_THROW(Layer{p}, std::invalid_argument);
}

TEST(Layer, PointwiseIsOneByOne) {
  const Layer l = make_pointwise("pw", 56, 56, 64, 128);
  EXPECT_EQ(l.filter_h(), 1);
  EXPECT_EQ(l.filter_w(), 1);
  EXPECT_EQ(l.ofmap_h(), 56);
  EXPECT_EQ(l.ofmap_channels(), 128);
  EXPECT_EQ(l.filter_elems(), 64u * 128);
}

TEST(Layer, FullyConnectedAsOneByOneConv) {
  const Layer l = make_fully_connected("fc", 512, 1000);
  EXPECT_EQ(l.ifmap_elems(), 512u);
  EXPECT_EQ(l.filter_elems(), 512u * 1000);
  EXPECT_EQ(l.ofmap_elems(), 1000u);
  EXPECT_EQ(l.macs(), 512u * 1000);
}

TEST(Layer, ProjectionDownsamples) {
  const Layer l = make_projection("proj", 56, 56, 64, 128, 2);
  EXPECT_EQ(l.ofmap_h(), 28);
  EXPECT_EQ(l.ofmap_channels(), 128);
  // Stride-2 1x1: only every other input pixel is consumed.
  EXPECT_EQ(l.padded_ifmap_h(), (28 - 1) * 2 + 1);
}

TEST(Layer, NonPositiveDimensionThrows) {
  Layer::Params p;
  p.name = "bad";
  p.ifmap_h = 0;
  p.ifmap_w = 8;
  p.channels = p.filter_h = p.filter_w = p.filters = 1;
  EXPECT_THROW(Layer{p}, std::invalid_argument);
}

TEST(Layer, NegativePaddingThrows) {
  Layer::Params p;
  p.name = "bad";
  p.ifmap_h = p.ifmap_w = 8;
  p.channels = p.filter_h = p.filter_w = p.filters = 1;
  p.padding = -1;
  EXPECT_THROW(Layer{p}, std::invalid_argument);
}

TEST(Layer, FilterLargerThanPaddedInputThrows) {
  Layer::Params p;
  p.name = "bad";
  p.ifmap_h = p.ifmap_w = 4;
  p.channels = 1;
  p.filter_h = p.filter_w = 7;
  p.filters = 1;
  EXPECT_THROW(Layer{p}, std::invalid_argument);
}

TEST(Layer, PointwiseWithLargeFilterThrows) {
  Layer::Params p;
  p.kind = LayerKind::kPointwise;
  p.name = "bad";
  p.ifmap_h = p.ifmap_w = 8;
  p.channels = 4;
  p.filter_h = 3;  // PW must be 1x1
  p.filter_w = 3;
  p.filters = 8;
  EXPECT_THROW(Layer{p}, std::invalid_argument);
}

TEST(Layer, EqualityAndStreaming) {
  const Layer a = resnet_conv1();
  const Layer b = resnet_conv1();
  EXPECT_EQ(a, b);
  std::ostringstream os;
  os << a;
  EXPECT_NE(os.str().find("conv1"), std::string::npos);
  EXPECT_NE(os.str().find("CV"), std::string::npos);
  EXPECT_NE(os.str().find("112x112x64"), std::string::npos);
}

}  // namespace
}  // namespace rainbow::model
