// Tests for the multi-tenant co-scheduler: interleaving, the combined
// capacity constraint, latency accounting, and superiority over a static
// per-tenant split.
#include <gtest/gtest.h>

#include "core/manager.hpp"
#include "core/multitenant.hpp"
#include "model/zoo/zoo.hpp"

namespace rainbow::core {
namespace {

arch::AcceleratorSpec spec_kb(count_t kb) { return arch::paper_spec(util::kib(kb)); }

model::Network tiny(const char* name, int layers, int channels) {
  model::Network net(name);
  for (int i = 0; i < layers; ++i) {
    net.add(model::make_conv(std::string(name) + std::to_string(i), 14, 14,
                             channels, 3, 3, channels, 1, 1));
  }
  return net;
}

TEST(MultiTenant, InterleavesRoundRobinWithSoloTail) {
  const auto a = tiny("a", 4, 16);
  const auto b = tiny("b", 2, 16);
  const auto plan = plan_multi_tenant(a, b, spec_kb(256), Objective::kAccesses);
  ASSERT_EQ(plan.steps.size(), 6u);
  // A0 B0 A1 B1 A2 A3.
  const int expected_tenant[] = {0, 1, 0, 1, 0, 0};
  const std::size_t expected_layer[] = {0, 0, 1, 1, 2, 3};
  for (std::size_t i = 0; i < plan.steps.size(); ++i) {
    EXPECT_EQ(plan.steps[i].tenant, expected_tenant[i]) << i;
    EXPECT_EQ(plan.steps[i].layer_index, expected_layer[i]) << i;
  }
}

TEST(MultiTenant, AdjacentWorkingSetsFitTogether) {
  const auto a = model::zoo::mobilenetv2();
  const auto b = model::zoo::resnet18();
  const auto spec = spec_kb(256);
  const auto plan = plan_multi_tenant(a, b, spec, Objective::kAccesses);
  EXPECT_LE(plan.peak_combined_elems, spec.glb_elems());
  for (std::size_t i = 0; i + 1 < plan.steps.size(); ++i) {
    EXPECT_LE(plan.steps[i].estimate.memory_elems() +
                  plan.steps[i + 1].estimate.memory_elems(),
              spec.glb_elems())
        << "steps " << i << "," << i + 1;
  }
}

TEST(MultiTenant, AccessesSumOverSteps) {
  const auto a = tiny("a", 3, 32);
  const auto b = tiny("b", 3, 24);
  const auto plan = plan_multi_tenant(a, b, spec_kb(256), Objective::kAccesses);
  count_t sum = 0;
  for (const auto& s : plan.steps) {
    sum += s.estimate.accesses();
  }
  EXPECT_EQ(plan.total_accesses, sum);
}

TEST(MultiTenant, OverlapNeverSlowerThanSerialized) {
  const auto a = model::zoo::mobilenet();
  const auto b = model::zoo::mnasnet();
  for (count_t kb : {128u, 512u}) {
    const auto plan =
        plan_multi_tenant(a, b, spec_kb(kb), Objective::kLatency);
    EXPECT_LE(plan.overlapped_latency_cycles,
              plan.serialized_latency_cycles + 1e-6)
        << kb;
    EXPECT_GT(plan.overlapped_latency_cycles, 0.0);
  }
}

TEST(MultiTenant, BeatsStaticSplitOnAccesses) {
  // Joint planning on the full GLB must move no more data than two
  // independent plans each confined to half of it.
  const auto a = model::zoo::mobilenetv2();
  const auto b = model::zoo::resnet18();
  const count_t total_kb = 256;
  const auto joint =
      plan_multi_tenant(a, b, spec_kb(total_kb), Objective::kAccesses);
  const MemoryManager half(spec_kb(total_kb / 2));
  const count_t split = half.plan(a, Objective::kAccesses).total_accesses() +
                        half.plan(b, Objective::kAccesses).total_accesses();
  EXPECT_LE(joint.total_accesses, split);
}

TEST(MultiTenant, SharingCostsLittleVersusExclusiveUse) {
  // Each tenant alone with the whole GLB is the lower bound; co-scheduling
  // should stay within a modest factor at a mid-size buffer.
  const auto a = model::zoo::mobilenet();
  const auto b = model::zoo::mnasnet();
  const auto spec = spec_kb(512);
  const auto joint = plan_multi_tenant(a, b, spec, Objective::kAccesses);
  const MemoryManager full(spec);
  const count_t exclusive =
      full.plan(a, Objective::kAccesses).total_accesses() +
      full.plan(b, Objective::kAccesses).total_accesses();
  EXPECT_LE(static_cast<double>(joint.total_accesses),
            1.25 * static_cast<double>(exclusive));
}

TEST(MultiTenant, ThrowsWhenTenantsCannotShare) {
  arch::AcceleratorSpec micro = spec_kb(64);
  micro.glb_bytes = 2 * 1024;  // 2 kB cannot host two working sets
  const auto a = model::zoo::resnet18();
  const auto b = model::zoo::mobilenet();
  EXPECT_THROW(
      (void)plan_multi_tenant(a, b, micro, Objective::kAccesses),
      std::runtime_error);
}

TEST(MultiTenant, AccessMbConversion) {
  const auto a = tiny("a", 2, 16);
  const auto b = tiny("b", 2, 16);
  const auto spec = spec_kb(256);
  const auto plan = plan_multi_tenant(a, b, spec, Objective::kAccesses);
  EXPECT_NEAR(plan.total_access_mb(spec),
              static_cast<double>(plan.total_accesses) / (1024.0 * 1024.0),
              1e-9);
}

}  // namespace
}  // namespace rainbow::core
