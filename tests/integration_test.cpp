// End-to-end integration tests: the paper's evaluation-level claims, run
// on the real model zoo against the real baseline.  These pin the *shape*
// of every headline result (who wins, roughly by how much, and where the
// trends point), not the paper's absolute numbers.
#include <gtest/gtest.h>

#include "core/interlayer.hpp"
#include "core/manager.hpp"
#include "engine/engine.hpp"
#include "model/zoo/zoo.hpp"
#include "scalesim/simulator.hpp"
#include "util/stats.hpp"

namespace rainbow {
namespace {

using core::Analyzer;
using core::ExecutionPlan;
using core::MemoryManager;
using core::Objective;

arch::AcceleratorSpec spec_kb(count_t kb) { return arch::paper_spec(util::kib(kb)); }

count_t best_baseline_accesses(const model::Network& net,
                               const arch::AcceleratorSpec& spec) {
  count_t best = ~0ull;
  for (const auto& part : scalesim::paper_partitions()) {
    const scalesim::Simulator sim(spec, part);
    best = std::min(best, sim.run(net).total_accesses);
  }
  return best;
}

// Figure 5's headline: at 64 kB, Het cuts off-chip accesses versus the
// best fixed-partition baseline for every model.  The paper reports
// 43-80%; our baseline handles depthwise layers per-channel (SCALE-Sim's
// topology format cannot express them), which makes it stronger on the
// DW-heavy models, so the floor here is lower — the direction and the
// suite-level magnitude are what we pin.
TEST(PaperClaims, HetBeatsEveryBaselineAt64kB) {
  const auto spec = spec_kb(64);
  const MemoryManager manager(spec);
  std::vector<double> reductions;
  reductions.reserve(model::zoo::all_models().size());
  for (const auto& net : model::zoo::all_models()) {
    const ExecutionPlan het = manager.plan(net, Objective::kAccesses);
    const count_t baseline = best_baseline_accesses(net, spec);
    const double reduction = util::benefit_percent(
        static_cast<double>(baseline), static_cast<double>(het.total_accesses()));
    EXPECT_GE(reduction, 10.0) << net.name() << ": " << reduction << "%";
    reductions.push_back(reduction);
  }
  EXPECT_GE(util::mean(reductions), 30.0);
}

// The paper's strongest case: ~80% reduction for ResNet18 at 64 kB.
TEST(PaperClaims, ResNet18ReductionIsLarge) {
  const auto spec = spec_kb(64);
  const MemoryManager manager(spec);
  const auto net = model::zoo::resnet18();
  const ExecutionPlan het = manager.plan(net, Objective::kAccesses);
  const count_t baseline = best_baseline_accesses(net, spec);
  const double reduction = util::benefit_percent(
      static_cast<double>(baseline), static_cast<double>(het.total_accesses()));
  EXPECT_GE(reduction, 55.0) << reduction << "%";
}

// Figure 5: Het's accesses are nearly independent of the buffer size — the
// flexible scheme captures minimum reuse from the smallest buffer.
TEST(PaperClaims, HetAccessesNearlyConstantAcrossBufferSizes) {
  const MemoryManager small(spec_kb(64));
  const MemoryManager large(spec_kb(1024));
  for (const auto& net : model::zoo::all_models()) {
    const count_t at64 =
        small.plan(net, Objective::kAccesses).total_accesses();
    const count_t at1m =
        large.plan(net, Objective::kAccesses).total_accesses();
    EXPECT_LE(static_cast<double>(at64),
              1.30 * static_cast<double>(at1m))
        << net.name();
  }
}

// Figure 5's baseline trend: the best fixed partition differs per model —
// filter-heavy models want sa_25_75, ifmap-heavy models want sa_75_25.
TEST(PaperClaims, BaselinePartitionPreferenceMatchesModelShape) {
  const auto spec = spec_kb(64);
  auto accesses = [&](const model::Network& net, double frac) {
    const scalesim::Simulator sim(
        spec, scalesim::BufferPartition{.ifmap_fraction = frac});
    return sim.run(net).total_accesses;
  };
  // Filter-dominated nets (paper: GoogLeNet, MobileNet, ResNet18).
  for (const char* name : {"GoogLeNet", "ResNet18", "MobileNet"}) {
    const auto net = model::zoo::by_name(name);
    EXPECT_LE(accesses(net, 0.25), accesses(net, 0.75)) << name;
  }
  // Ifmap-dominated nets (paper: EfficientNetB0, MnasNet, MobileNetV2).
  for (const char* name : {"EfficientNetB0", "MnasNet", "MobileNetV2"}) {
    const auto net = model::zoo::by_name(name);
    EXPECT_LE(accesses(net, 0.75), accesses(net, 0.25)) << name;
  }
}

// Figure 8: plans optimized for latency are no slower than plans optimized
// for accesses, and the latency objective pays with extra accesses at the
// smallest buffer (Figure 9's tradeoff).
TEST(PaperClaims, LatencyObjectiveTradesAccessesForSpeed) {
  const MemoryManager manager(spec_kb(64));
  bool some_model_trades = false;
  for (const auto& net : model::zoo::all_models()) {
    const ExecutionPlan het_a = manager.plan(net, Objective::kAccesses);
    const ExecutionPlan het_l = manager.plan(net, Objective::kLatency);
    EXPECT_LE(het_l.total_latency_cycles(), het_a.total_latency_cycles())
        << net.name();
    EXPECT_GE(het_l.total_accesses(), het_a.total_accesses()) << net.name();
    if (het_l.total_accesses() > het_a.total_accesses()) {
      some_model_trades = true;
    }
  }
  EXPECT_TRUE(some_model_trades);
}

// Figure 10: allowing prefetch reduces latency; coverage is high.
TEST(PaperClaims, PrefetchingImprovesLatencyWithHighCoverage) {
  const auto net = model::zoo::mobilenet();
  for (const auto glb : arch::paper_glb_sizes()) {
    core::AnalyzerOptions no_prefetch;
    no_prefetch.allow_prefetch = false;
    const Analyzer with(arch::paper_spec(glb));
    const Analyzer without(arch::paper_spec(glb), no_prefetch);
    const ExecutionPlan p_with = with.heterogeneous(net, Objective::kLatency);
    const ExecutionPlan p_without =
        without.heterogeneous(net, Objective::kLatency);
    EXPECT_LE(p_with.total_latency_cycles(), p_without.total_latency_cycles())
        << glb;
    EXPECT_GE(p_with.prefetch_coverage(), 0.5) << glb;
    EXPECT_DOUBLE_EQ(p_without.prefetch_coverage(), 0.0);
  }
}

// Figure 11: inter-layer reuse shows no benefit at 64 kB and a substantial
// access reduction with high coverage at 1 MB.
TEST(PaperClaims, InterlayerReuseNeedsLargeBuffers) {
  const auto net = model::zoo::mnasnet();
  const std::size_t boundaries = core::sequential_boundaries(net);

  const Analyzer small(spec_kb(64));
  const ExecutionPlan base_small =
      small.heterogeneous(net, Objective::kAccesses);
  const ExecutionPlan linked_small =
      core::apply_interlayer_reuse(base_small, net, small);
  // The paper reports 0% at 64 kB; our condition admits the late 7x7
  // stages whose ofmaps are a few kB, so a modest fraction links.
  EXPECT_LE(linked_small.interlayer_coverage(boundaries), 0.45);

  const Analyzer large(spec_kb(1024));
  const ExecutionPlan base_large =
      large.heterogeneous(net, Objective::kAccesses);
  const ExecutionPlan linked_large =
      core::apply_interlayer_reuse(base_large, net, large);
  EXPECT_GE(linked_large.interlayer_coverage(boundaries), 0.85);
  const double reduction = util::benefit_percent(
      static_cast<double>(base_large.total_accesses()),
      static_cast<double>(linked_large.total_accesses()));
  EXPECT_GE(reduction, 40.0) << reduction << "%";
}

// Figure 7: at wide data types and small buffers, Het beats Hom; the gap
// fades as the buffer grows (to ~zero at 1 MB) and shrinks with narrower
// data.  The paper reports up to 69% at 32-bit/64 kB; our Hom keeps the
// paper's own memory-dependent per-layer filter blocks, which makes the
// homogeneous scheme stronger and the gap smaller — the monotone shape is
// what we pin (see EXPERIMENTS.md).
TEST(PaperClaims, HetBeatsHomAtWideDataWidths) {
  const auto net = model::zoo::mobilenetv2();
  auto gap_at = [&](int width_bits, count_t glb_kb) {
    arch::AcceleratorSpec spec = spec_kb(glb_kb);
    spec.data_width_bits = width_bits;
    const MemoryManager manager(spec);
    const count_t het = manager.plan(net, Objective::kAccesses).total_accesses();
    const count_t hom =
        manager.plan_homogeneous(net, Objective::kAccesses).total_accesses();
    EXPECT_LE(het, hom) << width_bits << "-bit @ " << glb_kb << " kB";
    return 1.0 - static_cast<double>(het) / static_cast<double>(hom);
  };
  const double g32_small = gap_at(32, 64);
  const double g32_big = gap_at(32, 1024);
  const double g8_small = gap_at(8, 64);
  EXPECT_GE(g32_small, 0.02);      // a real gap under pressure
  EXPECT_LT(g32_big, g32_small);   // fades with buffer size
  EXPECT_LT(g8_small, g32_small);  // grows with data width
}

// Our estimates are conservative about padding (Section 5.1): at 1 MB the
// baseline can come out slightly ahead because it ignores padded pixels.
TEST(PaperClaims, PaddingExplainsLargeBufferParity) {
  const auto spec = spec_kb(1024);
  const auto net = model::zoo::mobilenetv2();
  core::AnalyzerOptions unpadded;
  unpadded.estimator.padded_traffic = false;
  const Analyzer fair(spec, unpadded);
  const count_t het_unpadded =
      fair.heterogeneous(net, Objective::kAccesses).total_accesses();
  const count_t baseline = best_baseline_accesses(net, spec);
  // With padding excluded on both sides, Het is never behind the baseline.
  EXPECT_LE(het_unpadded, baseline);
}

// Cross-validation: engine-measured totals equal plan estimates for a
// whole sweep (model x buffer size), i.e. the numbers every bench prints
// are backed by executable schedules.
TEST(Integration, PlansExecuteToTheirEstimates) {
  for (const auto glb : {util::kib(64), util::kib(256)}) {
    const auto spec = arch::paper_spec(glb);
    const MemoryManager manager(spec);
    const engine::Engine eng(spec);
    for (const auto& net : model::zoo::all_models()) {
      const ExecutionPlan plan = manager.plan(net, Objective::kAccesses);
      const auto exec = eng.execute_plan(plan, net);
      EXPECT_EQ(exec.total_accesses, plan.total_accesses())
          << net.name() << " @ " << glb;
    }
  }
}

}  // namespace
}  // namespace rainbow
