// Tests for the compression what-if analysis.
#include <gtest/gtest.h>

#include "core/compression.hpp"
#include "core/manager.hpp"
#include "model/zoo/zoo.hpp"

namespace rainbow::core {
namespace {

arch::AcceleratorSpec spec_kb(count_t kb) { return arch::paper_spec(util::kib(kb)); }

ExecutionPlan sample_plan(const model::Network& net, count_t kb = 64) {
  return MemoryManager(spec_kb(kb)).plan(net, Objective::kAccesses);
}

TEST(Compression, ValidatesRatios) {
  CompressionModel m;
  EXPECT_NO_THROW(m.validate());
  m.ifmap_ratio = 0.0;
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m.ifmap_ratio = 1.2;
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(Compression, IdentityRatiosChangeNothing) {
  const auto net = model::zoo::mobilenet();
  const auto plan = sample_plan(net);
  const auto m = apply_compression(plan, net, {});
  EXPECT_DOUBLE_EQ(m.dram_bytes, m.raw_bytes);
  EXPECT_DOUBLE_EQ(m.compression_factor(), 1.0);
  EXPECT_NEAR(m.raw_bytes, static_cast<double>(plan.total_access_bytes()),
              1e-6);
}

TEST(Compression, RatiosScaleTheRightComponents) {
  const auto net = model::zoo::resnet18();
  const auto plan = sample_plan(net);
  // Compress only filters: the byte saving must equal (1 - ratio) x the
  // plan's filter-read bytes.
  const CompressionModel filters_only{.ifmap_ratio = 1.0,
                                      .filter_ratio = 0.5,
                                      .ofmap_ratio = 1.0};
  const auto m = apply_compression(plan, net, filters_only);
  count_t filter_reads = 0;
  for (const auto& a : plan.assignments()) {
    filter_reads += a.estimate.traffic.filter_reads;
  }
  EXPECT_NEAR(m.raw_bytes - m.dram_bytes,
              0.5 * static_cast<double>(filter_reads), 1.0);
}

TEST(Compression, ImprovesLatencyAndEnergyMonotonically) {
  const auto net = model::zoo::googlenet();
  const auto plan = sample_plan(net);
  double prev_latency = 1e300, prev_energy = 1e300;
  for (double r : {1.0, 0.8, 0.6, 0.4}) {
    const CompressionModel m{.ifmap_ratio = r, .filter_ratio = r,
                             .ofmap_ratio = r};
    const auto out = apply_compression(plan, net, m);
    EXPECT_LT(out.latency_cycles, prev_latency) << r;
    EXPECT_LT(out.energy_mj, prev_energy) << r;
    prev_latency = out.latency_cycles;
    prev_energy = out.energy_mj;
    EXPECT_NEAR(out.compression_factor(), 1.0 / r, 1e-9);
  }
}

TEST(Compression, ComposesWithManagementNotReplacesIt) {
  // Compression shrinks the link bytes of *whatever* traffic the policies
  // leave; a compressed bad plan still moves more than a compressed good
  // plan.  (The two effects are orthogonal, which is the point of the
  // analysis.)
  const auto net = model::zoo::resnet18();
  const auto spec = spec_kb(64);
  const auto het = MemoryManager(spec).plan(net, Objective::kAccesses);
  const auto hom =
      MemoryManager(spec).plan_homogeneous(net, Objective::kAccesses);
  const CompressionModel half{.ifmap_ratio = 0.5, .filter_ratio = 0.5,
                              .ofmap_ratio = 0.5};
  EXPECT_LE(apply_compression(het, net, half).dram_bytes,
            apply_compression(hom, net, half).dram_bytes);
}

TEST(Compression, MismatchThrows) {
  const ExecutionPlan empty("x", "y", spec_kb(64), Objective::kAccesses);
  EXPECT_THROW((void)apply_compression(empty, model::zoo::mobilenet(), {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace rainbow::core
