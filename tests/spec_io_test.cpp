// The accelerator-spec text format: defaults, round-trips, and rejection
// of the wire-input corruption the rainbowd upload path can deliver.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "arch/spec_io.hpp"

namespace rainbow::arch {
namespace {

TEST(SpecIo, HeaderOnlyGetsPaperDefaults) {
  const NamedSpec named = parse_spec("spec, edge\n");
  EXPECT_EQ(named.name, "edge");
  EXPECT_EQ(named.spec.pe_rows, 16);
  EXPECT_EQ(named.spec.pe_cols, 16);
  EXPECT_EQ(named.spec.ops_per_cycle, 512);
  EXPECT_EQ(named.spec.data_width_bits, 8);
  EXPECT_EQ(named.spec.glb_bytes, 256u * 1024u);
  EXPECT_DOUBLE_EQ(named.spec.dram_bytes_per_cycle, 16.0);
  EXPECT_DOUBLE_EQ(named.spec.sram_bytes_per_cycle, 0.0);
}

TEST(SpecIo, AllFieldsParsed) {
  const NamedSpec named = parse_spec(
      "# a hand-written spec\n"
      "spec, big-iron\n"
      "pe_rows, 32\n"
      "pe_cols, 8\n"
      "ops_per_cycle, 1024\n"
      "data_width_bits, 16\n"
      "glb_bytes, 1048576\n"
      "dram_bytes_per_cycle, 32.5\n"
      "sram_bytes_per_cycle, 64\n");
  EXPECT_EQ(named.name, "big-iron");
  EXPECT_EQ(named.spec.pe_rows, 32);
  EXPECT_EQ(named.spec.pe_cols, 8);
  EXPECT_EQ(named.spec.ops_per_cycle, 1024);
  EXPECT_EQ(named.spec.data_width_bits, 16);
  EXPECT_EQ(named.spec.glb_bytes, 1048576u);
  EXPECT_DOUBLE_EQ(named.spec.dram_bytes_per_cycle, 32.5);
  EXPECT_DOUBLE_EQ(named.spec.sram_bytes_per_cycle, 64.0);
}

TEST(SpecIo, SerializeRoundTrips) {
  NamedSpec named;
  named.name = "roundtrip";
  named.spec = paper_spec(512 * 1024);
  named.spec.data_width_bits = 16;
  named.spec.sram_bytes_per_cycle = 128;
  const NamedSpec reparsed = parse_spec(serialize_spec(named));
  EXPECT_EQ(reparsed.name, named.name);
  EXPECT_EQ(serialize_spec(reparsed), serialize_spec(named));
}

TEST(SpecIo, CrlfAndCommentsAccepted) {
  const NamedSpec named = parse_spec(
      "spec, windows\r\n"
      "glb_bytes, 65536  # trailing comment\r\n");
  EXPECT_EQ(named.name, "windows");
  EXPECT_EQ(named.spec.glb_bytes, 65536u);
}

TEST(SpecIo, RejectsMalformedInput) {
  EXPECT_THROW(parse_spec(""), std::runtime_error);
  EXPECT_THROW(parse_spec("glb_bytes, 65536\n"), std::runtime_error);
  EXPECT_THROW(parse_spec("spec\n"), std::runtime_error);
  EXPECT_THROW(parse_spec("spec, a\nglb_bytes\n"), std::runtime_error);
  EXPECT_THROW(parse_spec("spec, a\nglb_bytes, many\n"), std::runtime_error);
  EXPECT_THROW(parse_spec("spec, a\nglb_bytes, -4\n"), std::runtime_error);
  EXPECT_THROW(parse_spec("spec, a\nwarp_size, 32\n"), std::runtime_error);
  EXPECT_THROW(parse_spec("spec, a\npe_rows, 8\npe_rows, 8\n"),
               std::runtime_error);
  // Parsed fields must still pass AcceleratorSpec::validate().
  EXPECT_THROW(parse_spec("spec, a\ndata_width_bits, 7\n"),
               std::runtime_error);
}

TEST(SpecIo, RejectsControlBytes) {
  try {
    parse_spec(std::string("spec, a\nglb_bytes, 6\x01""5536\n"));
    FAIL() << "control byte accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("control byte"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(SpecIo, FileRoundTrip) {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "spec_io_test.spec";
  NamedSpec named;
  named.name = "ondisk";
  named.spec = paper_spec(64 * 1024);
  save_spec(named, path);
  const NamedSpec loaded = load_spec(path);
  EXPECT_EQ(loaded.name, "ondisk");
  EXPECT_EQ(loaded.spec.glb_bytes, 64u * 1024u);
  std::filesystem::remove(path);
  EXPECT_THROW(load_spec(path), std::runtime_error);
}

}  // namespace
}  // namespace rainbow::arch
