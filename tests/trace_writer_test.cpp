// Tests for the SCALE-Sim-style trace writer: file structure, address
// ranges, determinism, truncation, consistency with the fold model, and
// byte-identity of the pipelined fast formatter against the naive
// per-field seed writer (kept verbatim below as the golden oracle).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "scalesim/trace_writer.hpp"
#include "scalesim/systolic.hpp"
#include "util/csv.hpp"

namespace rainbow::scalesim {
namespace {

std::filesystem::path temp_trace(const char* name) {
  return std::filesystem::temp_directory_path() / name;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)), {});
}

/// The seed writer's loop nest, verbatim (modulo writing to a string):
/// per-field operator<< over every cycle of every fold, including the
/// truncation `continue` and the ",-" idle-lane padding.  The pipelined
/// writer must reproduce these bytes exactly for every thread count.
std::string reference_sram_trace(const model::Layer& layer,
                                 const arch::AcceleratorSpec& spec,
                                 TraceWriterOptions options = {}) {
  std::ostringstream out;
  const FoldGeometry g = fold_geometry(layer, spec);
  const count_t rows = static_cast<count_t>(spec.pe_rows);
  const count_t cols = static_cast<count_t>(spec.pe_cols);
  out << "cycle";
  for (count_t r = 0; r < rows; ++r) {
    out << ",ifmap_row" << r;
  }
  for (count_t c = 0; c < cols; ++c) {
    out << ",filter_col" << c;
  }
  out << '\n';
  count_t rows_written = 0;
  count_t cycle = 0;
  for (count_t group = 0; group < g.channel_groups; ++group) {
    const count_t group_base = group * g.output_rows * g.reduction;
    for (count_t rf = 0; rf < g.row_folds; ++rf) {
      const count_t active_rows = std::min(rows, g.output_rows - rf * rows);
      for (count_t cf = 0; cf < g.col_folds; ++cf) {
        const count_t active_cols = std::min(cols, g.output_cols - cf * cols);
        for (count_t t = 0; t < g.reduction; ++t) {
          if (options.max_rows != 0 && rows_written >= options.max_rows) {
            continue;
          }
          out << cycle + t;
          for (count_t r = 0; r < rows; ++r) {
            if (r < active_rows) {
              const count_t pixel = rf * rows + r;
              out << ',' << group_base + pixel * g.reduction + t;
            } else {
              out << ",-";
            }
          }
          for (count_t c = 0; c < cols; ++c) {
            if (c < active_cols) {
              const count_t filter = cf * cols + c;
              out << ','
                  << options.filter_base + group_base +
                         filter * g.reduction + t;
            } else {
              out << ",-";
            }
          }
          out << '\n';
          ++rows_written;
        }
        cycle += g.reduction + 2 * rows - 2;
      }
    }
  }
  return out.str();
}

TEST(TraceWriter, RowCountMatchesStreamingCycles) {
  const auto layer = model::make_conv("c", 6, 6, 4, 3, 3, 8, 1, 1);
  const auto spec = arch::paper_spec(util::kib(64));
  const auto path = temp_trace("rainbow_trace1.csv");
  const auto info = write_sram_trace(layer, spec, path);
  // One row per streaming cycle: folds x T.
  const FoldGeometry g = fold_geometry(layer, spec);
  EXPECT_EQ(info.rows_written, g.folds() * g.reduction);
  EXPECT_EQ(info.cycles_total, info.rows_written);
  EXPECT_FALSE(info.truncated);

  const auto rows = util::read_csv(path);
  EXPECT_EQ(rows.size(), info.rows_written + 1);  // + header
  // Header: cycle + 16 ifmap + 16 filter columns.
  EXPECT_EQ(rows[0].size(), 1u + 16 + 16);
  EXPECT_EQ(rows[0][0], "cycle");
  std::filesystem::remove(path);
}

TEST(TraceWriter, AddressesSeparateOperandSpaces) {
  const auto layer = model::make_conv("c", 4, 4, 2, 3, 3, 4, 1, 1);
  const auto spec = arch::paper_spec(util::kib(64));
  const auto path = temp_trace("rainbow_trace2.csv");
  const TraceWriterOptions options{.filter_base = 1u << 20};
  (void)write_sram_trace(layer, spec, path, options);
  const auto rows = util::read_csv(path);
  const count_t ifmap_space =
      static_cast<count_t>(layer.ofmap_h()) * layer.ofmap_w() *
      layer.filter_h() * layer.filter_w() * layer.channels();
  for (std::size_t i = 1; i < rows.size(); ++i) {
    for (std::size_t col = 1; col <= 16; ++col) {
      if (rows[i][col] == "-") {
        continue;
      }
      EXPECT_LT(std::stoull(rows[i][col]), ifmap_space);
    }
    for (std::size_t col = 17; col <= 32; ++col) {
      if (rows[i][col] == "-") {
        continue;
      }
      EXPECT_GE(std::stoull(rows[i][col]), options.filter_base);
    }
  }
  std::filesystem::remove(path);
}

TEST(TraceWriter, InactiveLanesAreMarked) {
  // 4 filters on a 16-wide array: 12 filter lanes idle every cycle.
  const auto layer = model::make_conv("c", 4, 4, 2, 3, 3, 4, 1, 1);
  const auto spec = arch::paper_spec(util::kib(64));
  const auto path = temp_trace("rainbow_trace3.csv");
  (void)write_sram_trace(layer, spec, path);
  const auto rows = util::read_csv(path);
  ASSERT_GT(rows.size(), 1u);
  int idle = 0;
  for (std::size_t col = 17; col <= 32; ++col) {
    if (rows[1][col] == "-") {
      ++idle;
    }
  }
  EXPECT_EQ(idle, 12);
  std::filesystem::remove(path);
}

TEST(TraceWriter, TruncationCapsRowsButCountsCycles) {
  const auto layer = model::make_conv("c", 8, 8, 8, 3, 3, 16, 1, 1);
  const auto spec = arch::paper_spec(util::kib(64));
  const auto path = temp_trace("rainbow_trace4.csv");
  const auto info = write_sram_trace(layer, spec, path, {.max_rows = 100});
  EXPECT_EQ(info.rows_written, 100u);
  EXPECT_TRUE(info.truncated);
  const FoldGeometry g = fold_geometry(layer, spec);
  EXPECT_EQ(info.cycles_total, g.folds() * g.reduction);
  std::filesystem::remove(path);
}

TEST(TraceWriter, DeterministicOutput) {
  const auto layer = model::make_depthwise("dw", 5, 5, 3, 3, 3, 1, 1);
  const auto spec = arch::paper_spec(util::kib(64));
  const auto a = temp_trace("rainbow_trace5a.csv");
  const auto b = temp_trace("rainbow_trace5b.csv");
  (void)write_sram_trace(layer, spec, a);
  (void)write_sram_trace(layer, spec, b);
  std::ifstream fa(a), fb(b);
  std::string sa((std::istreambuf_iterator<char>(fa)), {});
  std::string sb((std::istreambuf_iterator<char>(fb)), {});
  EXPECT_EQ(sa, sb);
  EXPECT_FALSE(sa.empty());
  std::filesystem::remove(a);
  std::filesystem::remove(b);
}

TEST(TraceWriter, GoldenByteIdentityAgainstSeedWriter) {
  // Byte-identical to the seed writer across layer shapes that hit every
  // path: idle-lane ",-" padding (4 filters on 16 columns), depthwise
  // multi-group walks, multi-fold dense layers — for every thread count.
  const auto spec = arch::paper_spec(util::kib(64));
  const model::Layer layers[] = {
      model::make_conv("pad", 4, 4, 2, 3, 3, 4, 1, 1),
      model::make_depthwise("dw", 7, 7, 5, 3, 3, 1, 1),
      model::make_conv("folds", 12, 12, 8, 3, 3, 24, 1, 1),
  };
  const auto path = temp_trace("rainbow_trace_golden.csv");
  for (const auto& layer : layers) {
    const std::string golden = reference_sram_trace(layer, spec);
    for (int threads : {1, 2, 4, 0}) {
      const auto info =
          write_sram_trace(layer, spec, path, {.threads = threads});
      EXPECT_EQ(read_file(path), golden) << layer << " threads=" << threads;
      EXPECT_EQ(info.bytes_written, golden.size());
    }
  }
  std::filesystem::remove(path);
}

TEST(TraceWriter, GoldenByteIdentityUnderTruncation) {
  // The max_rows path: rows past the cap are elided, cycles keep counting,
  // and the cap may land mid-fold.  Bytes must still match the seed writer
  // for every thread count.
  const auto spec = arch::paper_spec(util::kib(64));
  const auto layer = model::make_conv("c", 8, 8, 8, 3, 3, 16, 1, 1);
  const auto path = temp_trace("rainbow_trace_golden_trunc.csv");
  const FoldGeometry g = fold_geometry(layer, spec);
  // Caps: mid-fold, exact fold boundary, everything, beyond-total.
  for (count_t cap : {count_t{37}, g.reduction * 2, count_t{100},
                      g.folds() * g.reduction, g.folds() * g.reduction + 50}) {
    TraceWriterOptions options;
    options.max_rows = cap;
    const std::string golden = reference_sram_trace(layer, spec, options);
    for (int threads : {1, 3, 0}) {
      options.threads = threads;
      const auto info = write_sram_trace(layer, spec, path, options);
      EXPECT_EQ(read_file(path), golden) << "cap=" << cap
                                         << " threads=" << threads;
      EXPECT_EQ(info.bytes_written, golden.size());
      EXPECT_EQ(info.truncated, cap < g.folds() * g.reduction);
    }
  }
  std::filesystem::remove(path);
}

TEST(TraceWriter, GoldenFileMatchesCommitted) {
  // Belt and braces against the in-test oracle drifting together with the
  // writer: the exact bytes of one small trace are committed to the repo.
  const auto spec = arch::paper_spec(util::kib(64));
  const auto layer = model::make_conv("c", 4, 4, 2, 3, 3, 4, 1, 1);
  const auto path = temp_trace("rainbow_trace_committed.csv");
  (void)write_sram_trace(layer, spec, path);
  const std::string committed = read_file(
      std::filesystem::path(RAINBOW_SOURCE_DIR) / "tests" / "data" /
      "golden_trace_small.csv");
  ASSERT_FALSE(committed.empty());
  EXPECT_EQ(read_file(path), committed);
  std::filesystem::remove(path);
}

TEST(TraceWriter, UnwritablePathThrows) {
  const auto layer = model::make_conv("c", 4, 4, 2, 3, 3, 4, 1, 1);
  const auto spec = arch::paper_spec(util::kib(64));
  EXPECT_THROW(
      (void)write_sram_trace(layer, spec, "/nonexistent/dir/trace.csv"),
      std::runtime_error);
}

}  // namespace
}  // namespace rainbow::scalesim
