// Tests for the SCALE-Sim-style trace writer: file structure, address
// ranges, determinism, truncation, and consistency with the fold model.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "scalesim/trace_writer.hpp"
#include "scalesim/systolic.hpp"
#include "util/csv.hpp"

namespace rainbow::scalesim {
namespace {

std::filesystem::path temp_trace(const char* name) {
  return std::filesystem::temp_directory_path() / name;
}

TEST(TraceWriter, RowCountMatchesStreamingCycles) {
  const auto layer = model::make_conv("c", 6, 6, 4, 3, 3, 8, 1, 1);
  const auto spec = arch::paper_spec(util::kib(64));
  const auto path = temp_trace("rainbow_trace1.csv");
  const auto info = write_sram_trace(layer, spec, path);
  // One row per streaming cycle: folds x T.
  const FoldGeometry g = fold_geometry(layer, spec);
  EXPECT_EQ(info.rows_written, g.folds() * g.reduction);
  EXPECT_EQ(info.cycles_total, info.rows_written);
  EXPECT_FALSE(info.truncated);

  const auto rows = util::read_csv(path);
  EXPECT_EQ(rows.size(), info.rows_written + 1);  // + header
  // Header: cycle + 16 ifmap + 16 filter columns.
  EXPECT_EQ(rows[0].size(), 1u + 16 + 16);
  EXPECT_EQ(rows[0][0], "cycle");
  std::filesystem::remove(path);
}

TEST(TraceWriter, AddressesSeparateOperandSpaces) {
  const auto layer = model::make_conv("c", 4, 4, 2, 3, 3, 4, 1, 1);
  const auto spec = arch::paper_spec(util::kib(64));
  const auto path = temp_trace("rainbow_trace2.csv");
  const TraceWriterOptions options{.filter_base = 1u << 20};
  (void)write_sram_trace(layer, spec, path, options);
  const auto rows = util::read_csv(path);
  const count_t ifmap_space =
      static_cast<count_t>(layer.ofmap_h()) * layer.ofmap_w() *
      layer.filter_h() * layer.filter_w() * layer.channels();
  for (std::size_t i = 1; i < rows.size(); ++i) {
    for (std::size_t col = 1; col <= 16; ++col) {
      if (rows[i][col] == "-") {
        continue;
      }
      EXPECT_LT(std::stoull(rows[i][col]), ifmap_space);
    }
    for (std::size_t col = 17; col <= 32; ++col) {
      if (rows[i][col] == "-") {
        continue;
      }
      EXPECT_GE(std::stoull(rows[i][col]), options.filter_base);
    }
  }
  std::filesystem::remove(path);
}

TEST(TraceWriter, InactiveLanesAreMarked) {
  // 4 filters on a 16-wide array: 12 filter lanes idle every cycle.
  const auto layer = model::make_conv("c", 4, 4, 2, 3, 3, 4, 1, 1);
  const auto spec = arch::paper_spec(util::kib(64));
  const auto path = temp_trace("rainbow_trace3.csv");
  (void)write_sram_trace(layer, spec, path);
  const auto rows = util::read_csv(path);
  ASSERT_GT(rows.size(), 1u);
  int idle = 0;
  for (std::size_t col = 17; col <= 32; ++col) {
    if (rows[1][col] == "-") {
      ++idle;
    }
  }
  EXPECT_EQ(idle, 12);
  std::filesystem::remove(path);
}

TEST(TraceWriter, TruncationCapsRowsButCountsCycles) {
  const auto layer = model::make_conv("c", 8, 8, 8, 3, 3, 16, 1, 1);
  const auto spec = arch::paper_spec(util::kib(64));
  const auto path = temp_trace("rainbow_trace4.csv");
  const auto info = write_sram_trace(layer, spec, path, {.max_rows = 100});
  EXPECT_EQ(info.rows_written, 100u);
  EXPECT_TRUE(info.truncated);
  const FoldGeometry g = fold_geometry(layer, spec);
  EXPECT_EQ(info.cycles_total, g.folds() * g.reduction);
  std::filesystem::remove(path);
}

TEST(TraceWriter, DeterministicOutput) {
  const auto layer = model::make_depthwise("dw", 5, 5, 3, 3, 3, 1, 1);
  const auto spec = arch::paper_spec(util::kib(64));
  const auto a = temp_trace("rainbow_trace5a.csv");
  const auto b = temp_trace("rainbow_trace5b.csv");
  (void)write_sram_trace(layer, spec, a);
  (void)write_sram_trace(layer, spec, b);
  std::ifstream fa(a), fb(b);
  std::string sa((std::istreambuf_iterator<char>(fa)), {});
  std::string sb((std::istreambuf_iterator<char>(fb)), {});
  EXPECT_EQ(sa, sb);
  EXPECT_FALSE(sa.empty());
  std::filesystem::remove(a);
  std::filesystem::remove(b);
}

TEST(TraceWriter, UnwritablePathThrows) {
  const auto layer = model::make_conv("c", 4, 4, 2, 3, 3, 4, 1, 1);
  const auto spec = arch::paper_spec(util::kib(64));
  EXPECT_THROW(
      (void)write_sram_trace(layer, spec, "/nonexistent/dir/trace.csv"),
      std::runtime_error);
}

}  // namespace
}  // namespace rainbow::scalesim
