// Unit tests for the Network container: trunk/branch wiring, sequential
// boundaries (the inter-layer-reuse eligibility), and aggregate counts.
#include <gtest/gtest.h>

#include <stdexcept>

#include "model/network.hpp"

namespace rainbow::model {
namespace {

Network small_chain() {
  Network net("chain");
  net.add(make_conv("a", 8, 8, 3, 3, 3, 4, 1, 1));
  net.add(make_conv("b", 8, 8, 4, 3, 3, 4, 1, 1));
  net.add(make_conv("c", 8, 8, 4, 3, 3, 4, 1, 1));
  return net;
}

TEST(Network, SizeAndAccess) {
  const Network net = small_chain();
  EXPECT_EQ(net.size(), 3u);
  EXPECT_FALSE(net.empty());
  EXPECT_EQ(net.layer(0).name(), "a");
  EXPECT_EQ(net.layer(2).name(), "c");
  EXPECT_THROW((void)net.layer(3), std::out_of_range);
}

TEST(Network, TrunkLayersHaveNoProducer) {
  const Network net = small_chain();
  for (std::size_t i = 0; i < net.size(); ++i) {
    EXPECT_FALSE(net.producer_of(i).has_value());
  }
}

TEST(Network, BranchRecordsProducer) {
  Network net = small_chain();
  net.add_branch(make_projection("proj", 8, 8, 3, 4, 1), 0);
  ASSERT_TRUE(net.producer_of(3).has_value());
  EXPECT_EQ(*net.producer_of(3), 0u);
}

TEST(Network, BranchWithInvalidProducerThrows) {
  Network net = small_chain();
  EXPECT_THROW(net.add_branch(make_projection("p", 8, 8, 3, 4, 1), 7),
               std::out_of_range);
}

TEST(Network, SequentialBoundaries) {
  Network net = small_chain();
  EXPECT_TRUE(net.is_sequential_boundary(0));
  EXPECT_TRUE(net.is_sequential_boundary(1));
  // Last layer has no following boundary.
  EXPECT_FALSE(net.is_sequential_boundary(2));

  net.add_branch(make_projection("proj", 8, 8, 3, 4, 1), 0);
  // c -> proj is NOT sequential: proj reads layer 0's output.
  EXPECT_FALSE(net.is_sequential_boundary(2));
}

TEST(Network, ProducerOfOutOfRangeThrows) {
  const Network net = small_chain();
  EXPECT_THROW((void)net.producer_of(99), std::out_of_range);
}

TEST(Network, TotalMacsIsSumOfLayers) {
  const Network net = small_chain();
  count_t expected = 0;
  for (const Layer& l : net.layers()) {
    expected += l.macs();
  }
  EXPECT_EQ(net.total_macs(), expected);
  EXPECT_GT(expected, 0u);
}

TEST(Network, TotalFilterElems) {
  const Network net = small_chain();
  // 3x3x3x4 + 2 x 3x3x4x4
  EXPECT_EQ(net.total_filter_elems(), 108u + 2 * 144);
}

TEST(Network, CountKind) {
  Network net = small_chain();
  net.add(make_fully_connected("fc", 16, 10));
  EXPECT_EQ(net.count_kind(LayerKind::kConv), 3u);
  EXPECT_EQ(net.count_kind(LayerKind::kFullyConnected), 1u);
  EXPECT_EQ(net.count_kind(LayerKind::kDepthwise), 0u);
}

TEST(Network, NameRoundTrip) {
  Network net;
  EXPECT_EQ(net.name(), "");
  net.set_name("model");
  EXPECT_EQ(net.name(), "model");
}

TEST(Network, EmptyNetwork) {
  const Network net("empty");
  EXPECT_TRUE(net.empty());
  EXPECT_EQ(net.total_macs(), 0u);
}

}  // namespace
}  // namespace rainbow::model
