// Property tests for the planning oracle on the paper's model zoo, at
// reduced sizes (layer-prefix slices) so every search closes exactly in
// test time.  The properties: the oracle's plan is valid and fits the GLB,
// it never loses to Algorithm 1, its reported cost is what its plan costs,
// and the whole computation is bitwise reproducible across repeated runs
// and concurrent executions (the search is deterministic by construction).
#include <gtest/gtest.h>

#include <vector>

#include "analysis/stream_analyzer.hpp"
#include "codegen/lower.hpp"
#include "core/manager.hpp"
#include "model/zoo/zoo.hpp"
#include "oracle/oracle.hpp"
#include "util/thread_pool.hpp"
#include "validate/plan_validator.hpp"

namespace rainbow::oracle {
namespace {

using core::Objective;
using model::Network;

arch::AcceleratorSpec spec_kb(count_t kb) {
  return arch::paper_spec(util::kib(kb));
}

/// First `max_layers` layers of `net` — a consumer always follows its
/// producer in layer order, so a prefix is itself a well-formed network.
Network prefix(const Network& net, std::size_t max_layers) {
  Network out(net.name() + "-prefix");
  for (std::size_t i = 0; i < net.size() && i < max_layers; ++i) {
    out.add(net.layer(i));
  }
  return out;
}

struct Case {
  Network net;
  count_t glb_kb;
  Objective objective;
};

std::vector<Case> reduced_zoo_cases() {
  std::vector<Case> cases;
  for (const std::string& name : model::zoo::model_names()) {
    const Network sliced = prefix(model::zoo::by_name(name), 12);
    for (count_t kb : {64u, 256u}) {
      for (Objective objective : {Objective::kAccesses, Objective::kLatency}) {
        cases.push_back({sliced, kb, objective});
      }
    }
  }
  return cases;
}

void check_plan_is_clean(const core::ExecutionPlan& plan, const Network& net) {
  ASSERT_TRUE(plan.feasible());
  const validate::PlanValidator validator;
  const validate::ValidationReport report = validator.validate(plan, net);
  EXPECT_EQ(report.error_count(), 0u)
      << net.name() << ": " << (report.diagnostics().empty()
                                    ? ""
                                    : report.diagnostics().front().message());
  const auto program = codegen::lower(plan, net);
  const auto analysis = analysis::analyze_lowering(program, plan, net);
  EXPECT_EQ(analysis.report.error_count(), 0u)
      << net.name() << ": "
      << (analysis.report.diagnostics().empty()
              ? ""
              : analysis.report.diagnostics().front().message());
}

TEST(OracleProperty, ReducedZooPlansAreValidOptimalAndReproducible) {
  for (const Case& c : reduced_zoo_cases()) {
    const arch::AcceleratorSpec spec = spec_kb(c.glb_kb);
    const OraclePlanner planner(spec);
    const OracleResult result = planner.plan(c.net, c.objective);
    ASSERT_TRUE(result.exact)
        << c.net.name() << " @ " << c.glb_kb << " kB did not close";

    // The plan achieves the reported optimum and fits the machine.
    EXPECT_DOUBLE_EQ(plan_cost(result.plan).primary, result.best_cost.primary);
    EXPECT_DOUBLE_EQ(result.lower_bound, result.best_cost.primary);
    check_plan_is_clean(result.plan, c.net);

    // Never worse than Algorithm 1 + greedy links.
    core::ManagerOptions moptions;
    moptions.interlayer_reuse = true;
    const core::MemoryManager manager(spec, moptions);
    const core::ExecutionPlan heuristic = manager.plan(c.net, c.objective);
    EXPECT_LE(result.best_cost.primary, plan_cost(heuristic).primary)
        << c.net.name() << " @ " << c.glb_kb << " kB";

    // Re-running the identical search reproduces the objective bitwise.
    const OracleResult again = planner.plan(c.net, c.objective);
    EXPECT_DOUBLE_EQ(again.best_cost.primary, result.best_cost.primary);
    EXPECT_DOUBLE_EQ(again.best_cost.secondary, result.best_cost.secondary);
    EXPECT_EQ(again.nodes_expanded, result.nodes_expanded);
  }
}

TEST(OracleProperty, ObjectiveIsStableAcrossConcurrentSearches) {
  // Eight concurrent searches of the same case must agree bitwise with a
  // sequential one — the planner shares no mutable state, so thread count
  // and scheduling cannot leak into the objective.
  const Network net = prefix(model::zoo::mobilenet(), 12);
  const arch::AcceleratorSpec spec = spec_kb(64);
  const OraclePlanner planner(spec);
  const OracleResult reference = planner.plan(net, Objective::kAccesses);

  struct Slot {
    double primary = -1.0;
    double secondary = -1.0;
    std::uint64_t nodes = 0;
  };
  std::vector<Slot> slots(8);
  util::parallel_for_each(slots, [&](Slot& s) {
    const OracleResult r = planner.plan(net, Objective::kAccesses);
    s.primary = r.best_cost.primary;
    s.secondary = r.best_cost.secondary;
    s.nodes = r.nodes_expanded;
  });
  for (const Slot& s : slots) {
    EXPECT_DOUBLE_EQ(s.primary, reference.best_cost.primary);
    EXPECT_DOUBLE_EQ(s.secondary, reference.best_cost.secondary);
    EXPECT_EQ(s.nodes, reference.nodes_expanded);
  }
}

}  // namespace
}  // namespace rainbow::oracle
