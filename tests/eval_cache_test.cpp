// The evaluation cache's contract, locked down three ways:
//  * unit behaviour — lookup/insert/eviction/counter semantics,
//  * key soundness — every input that can change an estimate changes the
//    signature (no false hits), and signatures are pure value functions
//    (no pointer/address/process dependence),
//  * determinism goldens — cached, uncached, and parallel-planned plans
//    are exactly equal for every zoo model, both objectives, and
//    inter-layer reuse on/off.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/eval_cache.hpp"
#include "core/manager.hpp"
#include "dse/sensitivity.hpp"
#include "model/zoo/zoo.hpp"

namespace rainbow::core {
namespace {

model::Layer::Params base_params() {
  model::Layer::Params p;
  p.kind = model::LayerKind::kConv;
  p.name = "conv";
  p.ifmap_h = 28;
  p.ifmap_w = 28;
  p.channels = 64;
  p.filter_h = 3;
  p.filter_w = 3;
  p.filters = 128;
  p.stride = 1;
  p.padding = 1;
  return p;
}

EvalKey key_of(const model::Layer::Params& params,
               const arch::AcceleratorSpec& spec, Objective objective,
               const AnalyzerOptions& options, const InterlayerAdjust& adjust) {
  return make_eval_key(model::Layer(params), spec, objective, options, adjust);
}

Estimate some_estimate(count_t accesses) {
  Estimate est;
  est.choice.policy = Policy::kIfmapReuse;
  est.traffic.ifmap_reads = accesses;
  est.feasible = true;
  return est;
}

// ---------------------------------------------------------------- unit ----

TEST(EvalCache, MissThenInsertThenHit) {
  EvalCache cache;
  const EvalKey key = key_of(base_params(), arch::paper_spec(util::kib(64)),
                             Objective::kAccesses, AnalyzerOptions{}, {});
  EXPECT_FALSE(cache.lookup(key).has_value());
  cache.insert(key, some_estimate(42));
  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->accesses(), 42u);

  const EvalCacheStats stats = cache.stats();
  EXPECT_EQ(stats.lookups, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.hits + stats.misses, stats.lookups);
}

TEST(EvalCache, FirstInsertWinsOnDuplicateKey) {
  EvalCache cache;
  const EvalKey key = key_of(base_params(), arch::paper_spec(util::kib(64)),
                             Objective::kAccesses, AnalyzerOptions{}, {});
  cache.insert(key, some_estimate(1));
  cache.insert(key, some_estimate(2));  // a concurrent duplicate computation
  EXPECT_EQ(cache.lookup(key)->accesses(), 1u);
  EXPECT_EQ(cache.stats().inserts, 1u);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(EvalCache, GetOrComputeComputesOnceAndDoesNotCacheExceptions) {
  EvalCache cache;
  const EvalKey key = key_of(base_params(), arch::paper_spec(util::kib(64)),
                             Objective::kAccesses, AnalyzerOptions{}, {});
  int calls = 0;
  EXPECT_THROW(
      (void)cache.get_or_compute(
          key,
          [&]() -> Estimate {
            ++calls;
            throw std::runtime_error("infeasible");
          }),
      std::runtime_error);
  EXPECT_EQ(cache.size(), 0u);

  const Estimate first = cache.get_or_compute(key, [&] {
    ++calls;
    return some_estimate(7);
  });
  const Estimate second = cache.get_or_compute(key, [&] {
    ++calls;
    return some_estimate(8);  // must not run
  });
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(first, second);
  EXPECT_EQ(second.accesses(), 7u);
}

TEST(EvalCache, BoundedSizeEvictsOldestAndCountsEvictions) {
  EvalCache cache(/*max_entries=*/EvalCache::kShardCount);  // 1 per shard
  auto params = base_params();
  for (int i = 0; i < 256; ++i) {
    params.ifmap_h = 8 + i;
    cache.insert(key_of(params, arch::paper_spec(util::kib(64)),
                        Objective::kAccesses, AnalyzerOptions{}, {}),
                 some_estimate(static_cast<count_t>(i)));
  }
  const EvalCacheStats stats = cache.stats();
  EXPECT_LE(stats.entries, cache.capacity());
  EXPECT_EQ(stats.inserts, 256u);
  EXPECT_EQ(stats.inserts - stats.evictions, stats.entries);
}

TEST(EvalCache, ClearDropsEntriesButKeepsCounters) {
  EvalCache cache;
  const EvalKey key = key_of(base_params(), arch::paper_spec(util::kib(64)),
                             Objective::kAccesses, AnalyzerOptions{}, {});
  cache.insert(key, some_estimate(1));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().inserts, 1u);
  EXPECT_FALSE(cache.lookup(key).has_value());
}

TEST(EvalCache, ApproxBytesTracksResidency) {
  EvalCache cache;
  EXPECT_EQ(cache.approx_bytes(), 0u);
  const EvalKey key = key_of(base_params(), arch::paper_spec(util::kib(64)),
                             Objective::kAccesses, AnalyzerOptions{}, {});
  cache.insert(key, some_estimate(1));
  const std::uint64_t one = cache.approx_bytes();
  // At least the key bytes and the stored estimate are accounted for.
  EXPECT_GE(one, static_cast<std::uint64_t>(key.bytes().size() +
                                            sizeof(Estimate)));
  EXPECT_EQ(cache.stats().approx_bytes, one);

  auto params = base_params();
  params.ifmap_h = 56;
  cache.insert(key_of(params, arch::paper_spec(util::kib(64)),
                      Objective::kAccesses, AnalyzerOptions{}, {}),
               some_estimate(2));
  EXPECT_GT(cache.approx_bytes(), one);

  cache.clear();
  EXPECT_EQ(cache.approx_bytes(), 0u);
}

TEST(EvalCache, ApproxBytesShrinksOnEviction) {
  EvalCache cache(/*max_entries=*/EvalCache::kShardCount);  // 1 per shard
  auto params = base_params();
  std::uint64_t peak = 0;
  for (int i = 0; i < 256; ++i) {
    params.ifmap_h = 8 + i;
    cache.insert(key_of(params, arch::paper_spec(util::kib(64)),
                        Objective::kAccesses, AnalyzerOptions{}, {}),
                 some_estimate(static_cast<count_t>(i)));
    peak = std::max(peak, cache.approx_bytes());
  }
  // Evictions release their accounting: residency is bounded by the
  // capacity-many largest entries, far below 256 un-evicted inserts.
  const EvalCacheStats stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(cache.approx_bytes(), peak);
  EXPECT_EQ(stats.approx_bytes, cache.approx_bytes());
}

// ------------------------------------------------------- key soundness ----

TEST(EvalKey, IdenticalInputsHashIdenticallyAndValueOnly) {
  const arch::AcceleratorSpec spec = arch::paper_spec(util::kib(256));
  const AnalyzerOptions options;
  const EvalKey a = key_of(base_params(), spec, Objective::kAccesses, options,
                           {.ifmap_resident = true, .keep_ofmap = false});
  // Freshly constructed objects at different addresses — including a
  // heap-allocated copy — must produce byte-identical signatures: the key
  // is a pure function of field values.
  const auto layer_copy =
      std::make_unique<model::Layer>(model::Layer(base_params()));
  const auto options_copy = std::make_unique<AnalyzerOptions>(options);
  const EvalKey b =
      make_eval_key(*layer_copy, arch::paper_spec(util::kib(256)),
                    Objective::kAccesses, *options_copy,
                    {.ifmap_resident = true, .keep_ofmap = false});
  EXPECT_EQ(a.bytes(), b.bytes());
  EXPECT_EQ(a.hash(), b.hash());
  // The FNV-1a hash of the canonical bytes is reproducible from the bytes
  // alone — nothing address- or process-dependent feeds it.
  EXPECT_EQ(a.hash(), EvalKey::fnv1a(a.bytes()));
}

TEST(EvalKey, LayerNameIsDeliberatelyExcluded) {
  auto renamed = base_params();
  renamed.name = "same-shape-different-name";
  const arch::AcceleratorSpec spec = arch::paper_spec(util::kib(256));
  EXPECT_EQ(
      key_of(base_params(), spec, Objective::kAccesses, AnalyzerOptions{}, {}),
      key_of(renamed, spec, Objective::kAccesses, AnalyzerOptions{}, {}));
}

TEST(EvalKey, EveryLayerFieldMutationChangesTheSignature) {
  const arch::AcceleratorSpec spec = arch::paper_spec(util::kib(256));
  const AnalyzerOptions options;
  const EvalKey base =
      key_of(base_params(), spec, Objective::kAccesses, options, {});

  const std::vector<void (*)(model::Layer::Params&)> mutations = {
      [](model::Layer::Params& p) { p.ifmap_h += 1; },
      [](model::Layer::Params& p) { p.ifmap_w += 1; },
      [](model::Layer::Params& p) { p.channels += 1; },
      [](model::Layer::Params& p) { p.filter_h += 2; },
      [](model::Layer::Params& p) { p.filter_w += 2; },
      [](model::Layer::Params& p) { p.filters += 1; },
      [](model::Layer::Params& p) { p.stride += 1; },
      [](model::Layer::Params& p) { p.padding += 1; },
  };
  for (std::size_t i = 0; i < mutations.size(); ++i) {
    auto params = base_params();
    mutations[i](params);
    EXPECT_NE(base, key_of(params, spec, Objective::kAccesses, options, {}))
        << "layer mutation " << i << " did not change the signature";
  }

  // Kind in isolation: a CV layer with a 1x1 filter and a PW layer of the
  // same dimensions differ only in kind.
  auto conv1x1 = base_params();
  conv1x1.filter_h = conv1x1.filter_w = 1;
  conv1x1.padding = 0;
  auto pointwise = conv1x1;
  pointwise.kind = model::LayerKind::kPointwise;
  EXPECT_NE(key_of(conv1x1, spec, Objective::kAccesses, options, {}),
            key_of(pointwise, spec, Objective::kAccesses, options, {}));
}

TEST(EvalKey, EverySpecFieldMutationChangesTheSignature) {
  const AnalyzerOptions options;
  const arch::AcceleratorSpec base_spec = arch::paper_spec(util::kib(256));
  const EvalKey base =
      key_of(base_params(), base_spec, Objective::kAccesses, options, {});

  const std::vector<void (*)(arch::AcceleratorSpec&)> mutations = {
      [](arch::AcceleratorSpec& s) { s.pe_rows *= 2; },
      [](arch::AcceleratorSpec& s) { s.pe_cols *= 2; },
      [](arch::AcceleratorSpec& s) { s.ops_per_cycle *= 2; },
      [](arch::AcceleratorSpec& s) { s.data_width_bits = 16; },
      [](arch::AcceleratorSpec& s) { s.glb_bytes *= 2; },
      [](arch::AcceleratorSpec& s) { s.dram_bytes_per_cycle *= 2.0; },
      [](arch::AcceleratorSpec& s) { s.sram_bytes_per_cycle = 32.0; },
  };
  for (std::size_t i = 0; i < mutations.size(); ++i) {
    arch::AcceleratorSpec spec = base_spec;
    mutations[i](spec);
    EXPECT_NE(base, key_of(base_params(), spec, Objective::kAccesses, options,
                           {}))
        << "spec mutation " << i << " did not change the signature";
  }
}

TEST(EvalKey, ObjectiveOptionsAndAdjustChangeTheSignature) {
  const arch::AcceleratorSpec spec = arch::paper_spec(util::kib(256));
  const AnalyzerOptions options;
  const EvalKey base =
      key_of(base_params(), spec, Objective::kAccesses, options, {});

  EXPECT_NE(base,
            key_of(base_params(), spec, Objective::kLatency, options, {}));

  AnalyzerOptions no_prefetch;
  no_prefetch.allow_prefetch = false;
  EXPECT_NE(base, key_of(base_params(), spec, Objective::kAccesses,
                         no_prefetch, {}));

  AnalyzerOptions fewer_policies;
  fewer_policies.policies.pop_back();
  EXPECT_NE(base, key_of(base_params(), spec, Objective::kAccesses,
                         fewer_policies, {}));

  // Order matters: the first-considered candidate wins exact ties.
  AnalyzerOptions reordered;
  std::swap(reordered.policies.front(), reordered.policies.back());
  EXPECT_NE(base, key_of(base_params(), spec, Objective::kAccesses,
                         reordered, {}));

  AnalyzerOptions unpadded;
  unpadded.estimator.padded_traffic = false;
  EXPECT_NE(base,
            key_of(base_params(), spec, Objective::kAccesses, unpadded, {}));

  AnalyzerOptions batched;
  batched.estimator.batch = 8;
  EXPECT_NE(base,
            key_of(base_params(), spec, Objective::kAccesses, batched, {}));

  EXPECT_NE(base, key_of(base_params(), spec, Objective::kAccesses, options,
                         {.ifmap_resident = true, .keep_ofmap = false}));
  EXPECT_NE(base, key_of(base_params(), spec, Objective::kAccesses, options,
                         {.ifmap_resident = false, .keep_ofmap = true}));
}

// ------------------------------------------------- determinism goldens ----

void expect_plans_identical(const ExecutionPlan& expected,
                            const ExecutionPlan& actual,
                            const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  EXPECT_EQ(expected.scheme(), actual.scheme()) << label;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const LayerAssignment& e = expected.assignment(i);
    const LayerAssignment& a = actual.assignment(i);
    ASSERT_EQ(e, a) << label << ": layer " << i << " diverged (policy "
                    << short_label(e.estimate.choice.policy,
                                   e.estimate.choice.prefetch)
                    << " vs "
                    << short_label(a.estimate.choice.policy,
                                   a.estimate.choice.prefetch) << ")";
  }
  EXPECT_EQ(expected.total_accesses(), actual.total_accesses()) << label;
  EXPECT_EQ(expected.total_latency_cycles(), actual.total_latency_cycles())
      << label;
}

TEST(EvalCacheDeterminism, CachedUncachedAndParallelPlansAreIdentical) {
  const arch::AcceleratorSpec spec = arch::paper_spec(util::kib(256));
  for (const auto& net : model::zoo::all_models()) {
    for (Objective objective : {Objective::kAccesses, Objective::kLatency}) {
      for (bool interlayer : {false, true}) {
        ManagerOptions plain_options;
        plain_options.interlayer_reuse = interlayer;
        const MemoryManager plain(spec, plain_options);
        const ExecutionPlan golden = plain.plan(net, objective);

        const std::string label =
            net.name() + "/" + std::string(to_string(objective)) +
            (interlayer ? "/inter" : "");

        ManagerOptions cached_options = plain_options;
        cached_options.analyzer.eval_cache = std::make_shared<EvalCache>();
        const MemoryManager cached(spec, cached_options);
        expect_plans_identical(golden, cached.plan(net, objective),
                               label + "/cached-cold");
        // The second pass answers everything from the cache.
        expect_plans_identical(golden, cached.plan(net, objective),
                               label + "/cached-warm");
        EXPECT_GT(cached_options.analyzer.eval_cache->stats().hits, 0u)
            << label;

        ManagerOptions parallel_options = plain_options;
        parallel_options.parallel_planning = true;
        parallel_options.planning_threads = 4;
        const MemoryManager parallel(spec, parallel_options);
        expect_plans_identical(golden, parallel.plan(net, objective),
                               label + "/parallel");

        ManagerOptions both_options = cached_options;
        both_options.parallel_planning = true;
        both_options.planning_threads = 4;
        const MemoryManager both(spec, both_options);
        expect_plans_identical(golden, both.plan(net, objective),
                               label + "/parallel+cached");
      }
    }
  }
}

TEST(EvalCacheDeterminism, SweepPointsIdenticalWithAndWithoutCache) {
  const auto net = model::zoo::mobilenetv2();
  dse::SweepConfig config;
  config.glb_bytes = {util::kib(64), util::kib(256), util::kib(1024)};
  config.data_width_bits = {8, 16};
  config.objectives = {Objective::kAccesses, Objective::kLatency};
  config.with_interlayer = true;

  dse::SweepConfig uncached = config;
  uncached.use_eval_cache = false;
  const auto plain = dse::run_sweep(net, uncached);

  dse::SweepConfig cached = config;
  cached.eval_cache = std::make_shared<EvalCache>();
  const auto memoized = dse::run_sweep(net, cached);

  ASSERT_EQ(plain.size(), memoized.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].accesses, memoized[i].accesses) << "point " << i;
    EXPECT_EQ(plain[i].latency_cycles, memoized[i].latency_cycles)
        << "point " << i;
    EXPECT_EQ(plain[i].energy_mj, memoized[i].energy_mj) << "point " << i;
    EXPECT_EQ(plain[i].prefetch_coverage, memoized[i].prefetch_coverage)
        << "point " << i;
    EXPECT_EQ(plain[i].interlayer_coverage, memoized[i].interlayer_coverage)
        << "point " << i;
  }
  EXPECT_GT(cached.eval_cache->stats().hit_rate(), 0.5);
}

TEST(EvalCacheDeterminism, GlbSensitivityMatchesManualSweep) {
  const auto net = model::zoo::resnet18();
  const std::vector<count_t> sizes = {util::kib(64), util::kib(128),
                                      util::kib(256)};
  const auto report = dse::glb_sensitivity(net, sizes);
  ASSERT_EQ(report.points.size(), sizes.size());
  ASSERT_EQ(report.marginals.size(), sizes.size() - 1);
  EXPECT_GT(report.cache.lookups, 0u);

  dse::SweepConfig config;
  config.glb_bytes = sizes;
  config.use_eval_cache = false;
  const auto plain = dse::run_sweep(net, config);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    EXPECT_EQ(report.points[i].accesses, plain[i].accesses);
    EXPECT_EQ(report.points[i].latency_cycles, plain[i].latency_cycles);
  }
  EXPECT_EQ(report.knee_bytes, dse::knee_glb_bytes(plain));
}

}  // namespace
}  // namespace rainbow::core
