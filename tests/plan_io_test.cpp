// Tests for plan persistence: decision round-trips reconstruct identical
// metrics, and the loader doubles as a validator for hand-edited plans.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/manager.hpp"
#include "core/plan_io.hpp"
#include "model/zoo/zoo.hpp"

namespace rainbow::core {
namespace {

arch::AcceleratorSpec spec_kb(count_t kb) { return arch::paper_spec(util::kib(kb)); }

TEST(PlanIo, RoundTripPreservesMetrics) {
  for (const auto& net : {model::zoo::resnet18(), model::zoo::mobilenetv2()}) {
    for (Objective obj : {Objective::kAccesses, Objective::kLatency}) {
      const MemoryManager manager(spec_kb(64));
      const ExecutionPlan original = manager.plan(net, obj);
      const ExecutionPlan loaded =
          parse_plan(serialize_plan(original), net);
      ASSERT_EQ(loaded.size(), original.size()) << net.name();
      EXPECT_EQ(loaded.total_accesses(), original.total_accesses());
      EXPECT_DOUBLE_EQ(loaded.total_latency_cycles(),
                       original.total_latency_cycles());
      EXPECT_EQ(loaded.objective(), obj);
      for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(loaded.assignment(i).estimate.choice,
                  original.assignment(i).estimate.choice)
            << net.name() << " layer " << i;
      }
    }
  }
}

TEST(PlanIo, RoundTripPreservesInterlayerLinks) {
  ManagerOptions options;
  options.interlayer_reuse = true;
  const MemoryManager manager(spec_kb(1024), options);
  const auto net = model::zoo::mnasnet();
  const ExecutionPlan original = manager.plan(net, Objective::kAccesses);
  ASSERT_GT(original.interlayer_links(), 0u);
  const ExecutionPlan loaded = parse_plan(serialize_plan(original), net);
  EXPECT_EQ(loaded.interlayer_links(), original.interlayer_links());
  EXPECT_EQ(loaded.total_accesses(), original.total_accesses());
}

TEST(PlanIo, FileRoundTrip) {
  const auto net = model::zoo::mobilenet();
  const MemoryManager manager(spec_kb(128));
  const ExecutionPlan original = manager.plan(net, Objective::kAccesses);
  const auto path =
      std::filesystem::temp_directory_path() / "rainbow_plan_test.plan";
  save_plan(original, path);
  const ExecutionPlan loaded = load_plan(path, net);
  EXPECT_EQ(loaded.total_accesses(), original.total_accesses());
  std::filesystem::remove(path);
}

TEST(PlanIo, RejectsWrongModel) {
  const MemoryManager manager(spec_kb(64));
  const auto plan = manager.plan(model::zoo::resnet18(), Objective::kAccesses);
  EXPECT_THROW((void)parse_plan(serialize_plan(plan), model::zoo::mobilenet()),
               std::runtime_error);
}

TEST(PlanIo, RejectsMalformedInput) {
  const auto net = model::zoo::mobilenet();
  EXPECT_THROW((void)parse_plan("", net), std::runtime_error);
  EXPECT_THROW((void)parse_plan("plan, MobileNet, 65536, 8\n", net),
               std::runtime_error);  // short header
  EXPECT_THROW((void)parse_plan("plan, MobileNet, 65536, 8, energy\n", net),
               std::runtime_error);  // bad objective
  // Right header, wrong decision count.
  EXPECT_THROW((void)parse_plan(
                   "plan, MobileNet, 65536, 8, accesses\n"
                   "0, p1, 0, 1, 0, 0, 0\n",
                   net),
               std::runtime_error);
}

TEST(PlanIo, ValidatesEditedDecisions) {
  // Hand-edit a decision into something infeasible (intra-layer reuse on
  // a megabyte-scale layer at 64 kB): the loader must refuse.
  const auto net = model::zoo::resnet18();
  const MemoryManager manager(spec_kb(64));
  std::string text = serialize_plan(manager.plan(net, Objective::kAccesses));
  const auto pos = text.find("\n1, ");
  ASSERT_NE(pos, std::string::npos);
  const auto line_end = text.find('\n', pos + 1);
  text.replace(pos, line_end - pos, "\n1, intra, 0, 1, 0, 0, 0");
  EXPECT_THROW((void)parse_plan(text, net), std::runtime_error);
}

TEST(PlanIo, AcceptsValidHandEdits) {
  // Swapping a layer to another feasible policy re-derives its metrics.
  const auto net = model::zoo::mobilenet();
  const MemoryManager manager(spec_kb(64));
  const ExecutionPlan original = manager.plan(net, Objective::kAccesses);
  std::string text = serialize_plan(original);
  const auto pos = text.find("\n25, ");
  ASSERT_NE(pos, std::string::npos);
  const auto line_end = text.find('\n', pos + 1);
  text.replace(pos, line_end - pos, "\n25, p2, 0, 1, 0, 0, 0");
  const ExecutionPlan edited = parse_plan(text, net);
  EXPECT_EQ(edited.assignment(25).estimate.choice.policy,
            Policy::kFilterReuse);
  EXPECT_NE(edited.total_accesses(), 0u);
}

TEST(PlanIo, PolicyLabelsRoundTrip) {
  for (Policy p : kAllPolicies) {
    EXPECT_EQ(policy_from_short_label(short_label(p, false)), p);
  }
  EXPECT_EQ(policy_from_short_label("tiled"), Policy::kFallbackTiled);
  EXPECT_THROW((void)policy_from_short_label("p9"), std::invalid_argument);
}

}  // namespace
}  // namespace rainbow::core
