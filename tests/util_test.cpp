// Unit tests for the utility layer: numeric helpers, statistics, table and
// CSV rendering, the wire-hardened line reader, and the thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/csv.hpp"
#include "util/line_reader.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace rainbow::util {
namespace {

TEST(CeilDiv, ExactDivision) { EXPECT_EQ(ceil_div(12, 4), 3u); }

TEST(CeilDiv, RoundsUp) {
  EXPECT_EQ(ceil_div(13, 4), 4u);
  EXPECT_EQ(ceil_div(1, 4), 1u);
}

TEST(CeilDiv, ZeroNumerator) { EXPECT_EQ(ceil_div(0, 4), 0u); }

TEST(CeilDiv, ZeroDenominatorThrows) {
  EXPECT_THROW(ceil_div(1, 0), std::invalid_argument);
}

TEST(Units, KibAndMib) {
  EXPECT_EQ(kib(64), 65536u);
  EXPECT_EQ(mib(1), 1048576u);
  EXPECT_EQ(mib(2), 2 * kib(1024));
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(512.0), "512.0 B");
  EXPECT_EQ(format_bytes(2048.0), "2.0 kB");
  EXPECT_EQ(format_bytes(3.5 * 1024 * 1024), "3.5 MB");
}

TEST(Geomean, SingleValue) {
  const double v[] = {7.0};
  EXPECT_DOUBLE_EQ(geomean(v), 7.0);
}

TEST(Geomean, KnownValue) {
  const double v[] = {1.0, 4.0, 16.0};
  EXPECT_NEAR(geomean(v), 4.0, 1e-12);
}

TEST(Geomean, EmptyThrows) {
  EXPECT_THROW(geomean(std::span<const double>{}), std::invalid_argument);
}

TEST(Geomean, NonPositiveThrows) {
  const double v[] = {1.0, 0.0};
  EXPECT_THROW(geomean(v), std::invalid_argument);
  const double w[] = {1.0, -2.0};
  EXPECT_THROW(geomean(w), std::invalid_argument);
}

TEST(Mean, KnownValue) {
  const double v[] = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
}

TEST(Mean, EmptyThrows) {
  EXPECT_THROW(mean(std::span<const double>{}), std::invalid_argument);
}

TEST(BenefitPercent, Reduction) {
  EXPECT_DOUBLE_EQ(benefit_percent(100.0, 20.0), 80.0);
}

TEST(BenefitPercent, Regression) {
  EXPECT_DOUBLE_EQ(benefit_percent(100.0, 133.0), -33.0);
}

TEST(BenefitPercent, ZeroReferenceThrows) {
  EXPECT_THROW(benefit_percent(0.0, 1.0), std::invalid_argument);
}

TEST(RunningStats, TracksMinMaxMean) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  s.add(3.0);
  s.add(-1.0);
  s.add(4.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.min(), -1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
}

TEST(RunningStats, EmptyAccessThrows) {
  RunningStats s;
  EXPECT_THROW((void)s.min(), std::logic_error);
  EXPECT_THROW((void)s.max(), std::logic_error);
  EXPECT_THROW((void)s.mean(), std::logic_error);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 2u);
}

TEST(Table, PrintsCsv) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Fmt, Precision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 0), "3");
}

TEST(FmtCount, GroupsThousands) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(1234567), "1,234,567");
}

TEST(Csv, SplitTrimsWhitespace) {
  const auto fields = split_csv_line(" a , b,c ");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
}

TEST(Csv, SplitKeepsEmptyFields) {
  const auto fields = split_csv_line("a,,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "");
}

TEST(Csv, RoundTripThroughFile) {
  const auto path = std::filesystem::temp_directory_path() / "rainbow_csv_test.csv";
  write_csv(path, {{"h1", "h2"}, {"1", "2"}});
  const auto rows = read_csv(path);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], "h1");
  EXPECT_EQ(rows[1][1], "2");
  std::filesystem::remove(path);
}

TEST(Csv, ReadSkipsCommentsAndBlanks) {
  const auto path = std::filesystem::temp_directory_path() / "rainbow_csv_test2.csv";
  {
    std::ofstream out(path);
    out << "# comment\n\na,b\n";
  }
  const auto rows = read_csv(path);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "a");
  std::filesystem::remove(path);
}

TEST(Csv, ReadMissingFileThrows) {
  EXPECT_THROW(read_csv("/nonexistent/rainbow.csv"), std::runtime_error);
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait();
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
}

TEST(ThreadPool, SurvivesExceptionAndContinues) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait();  // the earlier exception was consumed
  EXPECT_EQ(counter.load(), 1);
}

TEST(ParallelForEach, AppliesToEveryElement) {
  std::vector<int> values(50, 0);
  parallel_for_each(values, [](int& v) { v = 7; }, 4);
  for (int v : values) {
    EXPECT_EQ(v, 7);
  }
}

TEST(ResolveWorkers, EnforcesMinimumWorkPerWorker) {
  // Tiny runs resolve to a single (inline) worker; the pool only spins up
  // once every worker has at least min_items_per_worker items.
  EXPECT_EQ(resolve_workers(4, 3, 16), 1u);
  EXPECT_EQ(resolve_workers(4, 31, 16), 1u);
  EXPECT_EQ(resolve_workers(4, 32, 16), 2u);
  EXPECT_EQ(resolve_workers(4, 64, 16), 4u);
  EXPECT_EQ(resolve_workers(4, 1000, 16), 4u);  // capped by the request
  EXPECT_EQ(resolve_workers(1, 1000, 1), 1u);
  EXPECT_EQ(resolve_workers(-3, 1000, 1), 1u);  // negative clamps to 1
  EXPECT_EQ(resolve_workers(8, 0, 1), 1u);      // no work, no pool
  EXPECT_GE(resolve_workers(0, 1 << 20, 1), 1u);  // 0 = hw concurrency
}

TEST(ChunkCount, IsPureFunctionOfSizeAndGrain) {
  EXPECT_EQ(chunk_count(0, 8), 0u);
  EXPECT_EQ(chunk_count(1, 8), 1u);
  EXPECT_EQ(chunk_count(8, 8), 1u);
  EXPECT_EQ(chunk_count(9, 8), 2u);
  EXPECT_EQ(chunk_count(17, 8), 3u);
  EXPECT_EQ(chunk_count(5, 0), 5u);  // zero grain clamps to 1
}

TEST(ParallelForChunked, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 0}) {
    std::vector<std::atomic<int>> hits(103);
    std::vector<std::atomic<int>> chunk_of(103);
    parallel_for_chunked(
        hits.size(), 8, threads,
        [&](std::size_t chunk, std::size_t begin, std::size_t end) {
          EXPECT_LT(begin, end);
          for (std::size_t i = begin; i < end; ++i) {
            hits[i].fetch_add(1);
            chunk_of[i].store(static_cast<int>(chunk));
          }
        });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << i << " threads=" << threads;
      // Chunk boundaries are a pure function of (n, grain), independent of
      // the thread count.
      EXPECT_EQ(chunk_of[i].load(), static_cast<int>(i / 8)) << i;
    }
  }
}

TEST(ParallelForChunked, PropagatesTaskExceptions) {
  EXPECT_THROW(
      parallel_for_chunked(64, 4, 4,
                           [](std::size_t chunk, std::size_t, std::size_t) {
                             if (chunk == 7) {
                               throw std::runtime_error("chunk failed");
                             }
                           }),
      std::runtime_error);
}

TEST(ParallelForChunked, EmptyRangeRunsNothing) {
  int calls = 0;
  parallel_for_chunked(0, 8, 4,
                       [&](std::size_t, std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

// ----------------------------------------------------------- LineReader ----

std::vector<TextLine> drain(LineReader& reader) {
  std::vector<TextLine> lines;
  while (auto line = reader.next()) {
    lines.push_back(*line);
  }
  return lines;
}

TEST(LineReader, SplitsAllThreeTerminators) {
  for (const char* text : {"a\nb\nc\n", "a\r\nb\r\nc\r\n", "a\rb\rc\r",
                           "a\nb\r\nc", "a\rb\nc\r\n"}) {
    LineReader reader(text);
    const auto lines = drain(reader);
    ASSERT_EQ(lines.size(), 3u) << '"' << text << '"';
    EXPECT_EQ(lines[0].text, "a");
    EXPECT_EQ(lines[1].text, "b");
    EXPECT_EQ(lines[2].text, "c");
    EXPECT_EQ(lines[2].number, 3u);
  }
}

TEST(LineReader, PhysicalLineNumbersCountSkippedLines) {
  LineReader reader("first\n\n# comment only\n   \nsecond\n");
  const auto lines = drain(reader);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].number, 1u);
  EXPECT_EQ(lines[1].number, 5u);
  EXPECT_EQ(lines[1].text, "second");
}

TEST(LineReader, StripsCommentsToEndOfLine) {
  LineReader reader("value # trailing\n# full line\nplain\n");
  const auto lines = drain(reader);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].text, "value ");
  EXPECT_EQ(lines[1].text, "plain");
}

TEST(LineReader, OptionsDisableNormalization) {
  LineReader::Options options;
  options.strip_comments = false;
  options.skip_blank = false;
  LineReader reader("# kept\n\nx\n", options);
  const auto lines = drain(reader);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].text, "# kept");
  EXPECT_EQ(lines[1].text, "");
  EXPECT_EQ(lines[2].text, "x");
}

TEST(LineReader, RejectsControlBytesWithLineNumber) {
  LineReader reader("fine\nbad\x01line\n");
  EXPECT_TRUE(reader.next().has_value());
  try {
    (void)reader.next();
    FAIL() << "control byte accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("0x01"), std::string::npos);
  }
  // NUL is rejected too; tab is not.
  LineReader nul(std::string_view("a\0b\n", 4));
  EXPECT_THROW((void)nul.next(), std::runtime_error);
  LineReader tab("a\tb\n");
  EXPECT_EQ(drain(tab).at(0).text, "a\tb");
}

TEST(LineReader, LastLineWithoutTerminator) {
  LineReader reader("a\nb");
  const auto lines = drain(reader);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[1].text, "b");
  EXPECT_FALSE(reader.next().has_value());  // stays exhausted
}

TEST(LineReader, EmptyInputYieldsNothing) {
  LineReader reader("");
  EXPECT_FALSE(reader.next().has_value());
  LineReader blank("\n\r\n  \n");
  EXPECT_FALSE(blank.next().has_value());
}

}  // namespace
}  // namespace rainbow::util
