// Parameterized fuzzing of the model text parser: every malformed input
// must produce a clean std::runtime_error — never a crash, never a
// silently wrong network.
#include <gtest/gtest.h>

#include <string>

#include "model/parser.hpp"

namespace rainbow::model {
namespace {

class ParserFuzzTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ParserFuzzTest, MalformedInputThrowsCleanly) {
  EXPECT_THROW((void)parse_network(GetParam()), std::runtime_error);
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, ParserFuzzTest,
    ::testing::Values(
        // Header problems.
        "",
        "net, X\nCV, a, 8, 8, 3, 3, 3, 4, 1, 1\n",
        "network\nCV, a, 8, 8, 3, 3, 3, 4, 1, 1\n",
        "network, A, B\nCV, a, 8, 8, 3, 3, 3, 4, 1, 1\n",
        // Arity problems.
        "network, X\nCV\n",
        "network, X\nCV, a\n",
        "network, X\nCV, a, 8, 8, 3, 3, 3, 4, 1\n",
        "network, X\nCV, a, 8, 8, 3, 3, 3, 4, 1, 1, 0, 9\n",
        // Kind problems.
        "network, X\nXX, a, 8, 8, 3, 3, 3, 4, 1, 1\n",
        "network, X\ncv, a, 8, 8, 3, 3, 3, 4, 1, 1\n",
        // Numeric problems.
        "network, X\nCV, a, eight, 8, 3, 3, 3, 4, 1, 1\n",
        "network, X\nCV, a, 8.5, 8, 3, 3, 3, 4, 1, 1\n",
        "network, X\nCV, a, 8, 8, 3, 3, 3, 4, 1, one\n",
        "network, X\nCV, a, , 8, 3, 3, 3, 4, 1, 1\n",
        // Geometry problems (Layer validation).
        "network, X\nCV, a, 0, 8, 3, 3, 3, 4, 1, 1\n",
        "network, X\nCV, a, 8, 8, -3, 3, 3, 4, 1, 1\n",
        "network, X\nCV, a, 8, 8, 3, 3, 3, 4, 0, 1\n",
        "network, X\nCV, a, 8, 8, 3, 3, 3, 4, 1, -1\n",
        "network, X\nCV, a, 4, 4, 3, 9, 9, 4, 1, 0\n",      // filter too big
        "network, X\nDW, a, 8, 8, 4, 3, 3, 8, 1, 1\n",      // DW filters != ci
        "network, X\nPW, a, 8, 8, 4, 3, 3, 8, 1, 1\n",      // PW not 1x1
        "network, X\nFC, a, 1, 1, 4, 2, 2, 8, 1, 0\n",      // FC not 1x1
        // Producer problems.
        "network, X\nCV, a, 8, 8, 3, 3, 3, 4, 1, 1, -1\n",
        "network, X\nCV, a, 8, 8, 3, 3, 3, 4, 1, 1, 0\n",   // self/forward ref
        "network, X\nCV, a, 8, 8, 3, 3, 3, 4, 1, 1, 7\n",
        // Wire corruption: a socket upload truncated mid-line must fail
        // like any other arity error, with or without CRLF endings.
        "network,",
        "network, X\nCV, a, 8, 8,",
        "network, X\r\nCV, a, 8, 8,\r\n",
        "network, X\nCV, a, 8, 8, 3, 3, 3, 4, 1, 1\nCV, b, 8",
        "network, X\r\nCV, a, 8, 8, 3, 3, 3, 4, 1, 1\r\nCV, b, 8\r",
        // Trailing garbage after a valid model.
        "network, X\nCV, a, 8, 8, 3, 3, 3, 4, 1, 1\ntrailing garbage\n",
        "network, X\nCV, a, 8, 8, 3, 3, 3, 4, 1, 1\n\x7f\x03\x02\n",
        // Binary bytes spliced into the text (NUL needs the explicit-length
        // constructor below, so it rides in a control-byte sibling).
        "network, X\nCV\x01, a, 8, 8, 3, 3, 3, 4, 1, 1\n",
        "\x02network, X\nCV, a, 8, 8, 3, 3, 3, 4, 1, 1\n"));

TEST(ParserFuzz, NulByteRejected) {
  EXPECT_THROW((void)parse_network(std::string(
                   "network, X\nCV, a, 8, 8\x00, 3, 3, 3, 4, 1, 1\n", 42)),
               std::runtime_error);
}

TEST(ParserFuzz, ControlByteErrorNamesThePhysicalLine) {
  try {
    (void)parse_network("network, X\r\n\r\nCV, a, 8, \x015, 3, 3, 3, 4, 1, 1\r\n");
    FAIL() << "control byte accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("control byte"), std::string::npos);
  }
}

TEST(ParserFuzz, TruncationErrorNamesTheLastLine) {
  try {
    (void)parse_network("network, X\nCV, a, 8, 8, 3, 3, 3, 4, 1, 1\nCV, b");
    FAIL() << "truncated row accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

class ParserAcceptTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ParserAcceptTest, OddButValidInputParses) {
  EXPECT_NO_THROW((void)parse_network(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(
    Valid, ParserAcceptTest,
    ::testing::Values(
        // Whitespace and comment tolerance.
        "network,X\nCV,a,8,8,3,3,3,4,1,1\n",
        "  network ,  X  \n CV , a , 8 , 8 , 3 , 3 , 3 , 4 , 1 , 1 \n",
        "# c1\nnetwork, X\n# c2\nCV, a, 8, 8, 3, 3, 3, 4, 1, 1 # c3\n",
        "network, X\r\nCV, a, 8, 8, 3, 3, 3, 4, 1, 1\r\n",
        // Lone-CR endings and mixed terminators (hand-rolled clients).
        "network, X\rCV, a, 8, 8, 3, 3, 3, 4, 1, 1\r",
        "network, X\r\nCV, a, 8, 8, 3, 3, 3, 4, 1, 1\n",
        // CRLF with comments and blank lines interleaved.
        "# head\r\nnetwork, X\r\n\r\nCV, a, 8, 8, 3, 3, 3, 4, 1, 1 # t\r\n",
        // No trailing newline.
        "network, X\nCV, a, 8, 8, 3, 3, 3, 4, 1, 1",
        // Degenerate but legal shapes.
        "network, X\nCV, a, 1, 1, 1, 1, 1, 1, 1, 0\n",
        "network, X\nCV, a, 8, 8, 3, 3, 3, 4, 7, 1\n"));  // huge stride

}  // namespace
}  // namespace rainbow::model
