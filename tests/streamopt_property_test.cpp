// Property tests for the stream optimizer: (1) across 256 seeded random
// networks, the optimizer's emitted stream always certifies and
// interprets bit-identically to the original — per-layer traffic, MACs,
// GLB peaks, and program totals (the final GLB state is leak-free by the
// interpreter's own validation); (2) adversarial fuzzing — random illegal
// hoists, draining-barrier elisions, and transfer corruptions — is
// rejected by the stage gates with exactly the right O-code, never
// accepted and never misclassified.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "analysis/race.hpp"
#include "analysis/streamopt.hpp"
#include "codegen/interpret.hpp"
#include "codegen/lower.hpp"
#include "core/manager.hpp"
#include "model/random.hpp"
#include "model/zoo/zoo.hpp"

namespace rainbow::analysis {
namespace {

using codegen::Command;
using codegen::Program;
using validate::Code;

constexpr int kSeeds = 256;

TEST(StreamOptProperty, RandomNetworksOptimizeToIdenticalSemantics) {
  model::RandomNetworkOptions net_options;
  net_options.min_layers = 3;
  net_options.max_layers = 10;
  net_options.input_size = 32;
  const core::MemoryManager manager(arch::paper_spec(util::kib(64)));
  std::size_t reordered_streams = 0;
  for (int seed = 0; seed < kSeeds; ++seed) {
    const model::Network net =
        model::random_network(static_cast<std::uint64_t>(seed), net_options);
    const core::ExecutionPlan plan =
        manager.plan(net, core::Objective::kLatency);
    ASSERT_TRUE(plan.feasible()) << "seed " << seed;
    const Program program = codegen::lower(plan, net);
    const OptimizeResult result = optimize_program(program, plan, net);
    ASSERT_TRUE(result.certified)
        << "seed " << seed << "\n" << result.report.summary();
    ASSERT_TRUE(result.ok()) << "seed " << seed;
    EXPECT_LE(result.optimized_cycles,
              result.original_cycles * (1.0 + 1e-9))
        << "seed " << seed;
    reordered_streams += result.layers_reordered > 0 ? 1u : 0u;

    // Differential interpretation: identical traffic, MACs, peaks, and
    // totals; run() itself throws on leaks or malformed streams, so a
    // clean return is the leak-free final-state check.
    const codegen::Interpreter interp(program.spec);
    const codegen::ProgramRun before = interp.run(program);
    const codegen::ProgramRun after = interp.run(result.program);
    ASSERT_EQ(before.layers.size(), after.layers.size()) << "seed " << seed;
    for (std::size_t l = 0; l < before.layers.size(); ++l) {
      ASSERT_TRUE(before.layers[l].traffic == after.layers[l].traffic)
          << "seed " << seed << " layer " << l;
      ASSERT_EQ(before.layers[l].macs, after.layers[l].macs)
          << "seed " << seed << " layer " << l;
      ASSERT_EQ(before.layers[l].peak_glb_elems,
                after.layers[l].peak_glb_elems)
          << "seed " << seed << " layer " << l;
    }
    EXPECT_EQ(before.total_accesses, after.total_accesses)
        << "seed " << seed;
    EXPECT_EQ(before.peak_glb_elems, after.peak_glb_elems)
        << "seed " << seed;
  }
  // The latency objective plans prefetch wherever it wins, so a healthy
  // share of random networks must actually exercise the reorder pass.
  EXPECT_GT(reordered_streams, static_cast<std::size_t>(kSeeds / 8));
}

/// Fixed real lowering for the adversarial side (4 layers keeps 256 gate
/// calls fast; forced p2+prefetch keeps every layer tagged and
/// double-buffered, the shape the optimizer rewrites).
struct FuzzFixture {
  model::Network net = model::zoo::mobilenet();
  core::ExecutionPlan plan;
  Program program;
  /// Intra-layer (layer, from, to) pairs over command indices for every
  /// kDep/kSync dependence of the original graph.
  struct Constraint {
    std::size_t layer;
    std::size_t from;
    std::size_t to;
  };
  std::vector<Constraint> constraints;
  /// Positions of barriers that drain at least one async command.
  struct BarrierSite {
    std::size_t layer;
    std::size_t index;
  };
  std::vector<BarrierSite> draining_barriers;

  FuzzFixture()
      : plan(core::MemoryManager(arch::paper_spec(util::kib(256)))
                 .plan_with_policy(net, core::Policy::kFilterReuse,
                                   /*prefetch=*/true,
                                   core::Objective::kAccesses)),
        program(codegen::lower(plan, net)) {
    program.layers.resize(4);
    const DepGraph graph = DepGraph::build(program);
    for (const DepEdge& e : graph.edges()) {
      if (e.kind != DepEdgeKind::kDep && e.kind != DepEdgeKind::kSync) {
        continue;
      }
      const DepNode& from = graph.nodes()[e.from];
      const DepNode& to = graph.nodes()[e.to];
      if (from.layer == to.layer) {
        constraints.push_back({from.layer, from.command, to.command});
      }
    }
    for (std::size_t l = 0; l < program.layers.size(); ++l) {
      std::size_t asyncs = 0;
      const auto& cmds = program.layers[l].commands;
      for (std::size_t i = 0; i < cmds.size(); ++i) {
        switch (cmds[i].op) {
          case Command::Op::kLoad:
          case Command::Op::kStore:
          case Command::Op::kCompute:
            ++asyncs;
            break;
          case Command::Op::kBarrier:
            if (asyncs > 0) {
              draining_barriers.push_back({l, i});
            }
            asyncs = 0;
            break;
          default:
            break;
        }
      }
    }
  }
};

TEST(StreamOptProperty, RandomIllegalHoistsAreRejectedWithO001) {
  const FuzzFixture fixture;
  ASSERT_FALSE(fixture.constraints.empty());
  for (int seed = 0; seed < kSeeds; ++seed) {
    std::mt19937 rng(static_cast<std::uint32_t>(seed) ^ 0x5eed0001u);
    std::uniform_int_distribution<std::size_t> pick(
        0, fixture.constraints.size() - 1);
    const auto& c = fixture.constraints[pick(rng)];
    Program candidate = fixture.program;
    auto& cmds = candidate.layers[c.layer].commands;
    Command moved = cmds[c.to];
    cmds.erase(cmds.begin() + static_cast<std::ptrdiff_t>(c.to));
    cmds.insert(cmds.begin() + static_cast<std::ptrdiff_t>(c.from), moved);
    const validate::ValidationReport gate =
        check_reorder_stage(fixture.program, candidate);
    EXPECT_FALSE(gate.ok()) << "seed " << seed;
    EXPECT_GE(gate.count(Code::kOptReorderViolation), 1u) << "seed " << seed;
    EXPECT_EQ(gate.count(Code::kOptStructuralViolation), 0u)
        << "seed " << seed;
  }
}

TEST(StreamOptProperty, RandomDrainingBarrierElisionsAreRejectedWithO006) {
  const FuzzFixture fixture;
  ASSERT_FALSE(fixture.draining_barriers.empty());
  for (int seed = 0; seed < kSeeds; ++seed) {
    std::mt19937 rng(static_cast<std::uint32_t>(seed) ^ 0x5eed0006u);
    std::uniform_int_distribution<std::size_t> pick(
        0, fixture.draining_barriers.size() - 1);
    const auto& site = fixture.draining_barriers[pick(rng)];
    Program candidate = fixture.program;
    auto& cmds = candidate.layers[site.layer].commands;
    cmds.erase(cmds.begin() + static_cast<std::ptrdiff_t>(site.index));
    const validate::ValidationReport gate =
        check_elision_stage(fixture.program, candidate);
    EXPECT_FALSE(gate.ok()) << "seed " << seed;
    EXPECT_GE(gate.count(Code::kOptStructuralViolation), 1u)
        << "seed " << seed;
  }
}

TEST(StreamOptProperty, RandomTransferCorruptionsAreRejectedWithO006) {
  const FuzzFixture fixture;
  // Collect every transfer (load/store) site once.
  struct Site {
    std::size_t layer;
    std::size_t index;
  };
  std::vector<Site> transfers;
  for (std::size_t l = 0; l < fixture.program.layers.size(); ++l) {
    const auto& cmds = fixture.program.layers[l].commands;
    for (std::size_t i = 0; i < cmds.size(); ++i) {
      if (cmds[i].op == Command::Op::kLoad ||
          cmds[i].op == Command::Op::kStore) {
        transfers.push_back({l, i});
      }
    }
  }
  ASSERT_FALSE(transfers.empty());
  for (int seed = 0; seed < kSeeds; ++seed) {
    std::mt19937 rng(static_cast<std::uint32_t>(seed) ^ 0x5eedc0deu);
    std::uniform_int_distribution<std::size_t> pick(0, transfers.size() - 1);
    const Site& site = transfers[pick(rng)];
    Program candidate = fixture.program;
    Command& cmd = candidate.layers[site.layer].commands[site.index];
    // Inflate the transfer: no run of original chunks can sum to it.
    cmd.elems += 1 + (rng() % 7);
    const validate::ValidationReport gate =
        check_coalesce_stage(fixture.program, candidate);
    EXPECT_FALSE(gate.ok()) << "seed " << seed;
    EXPECT_GE(gate.count(Code::kOptStructuralViolation), 1u)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace rainbow::analysis
