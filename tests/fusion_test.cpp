// Tests for the layer-fusion analysis.
#include <gtest/gtest.h>

#include "core/fusion.hpp"
#include "core/interlayer.hpp"
#include "core/manager.hpp"
#include "model/zoo/zoo.hpp"

namespace rainbow::core {
namespace {

arch::AcceleratorSpec spec_kb(count_t kb) { return arch::paper_spec(util::kib(kb)); }

model::Network conv_chain() {
  model::Network net("chain");
  net.add(model::make_conv("a", 28, 28, 8, 3, 3, 16, 1, 1));
  net.add(model::make_conv("b", 28, 28, 16, 3, 3, 16, 1, 1));
  net.add(model::make_conv("c", 28, 28, 16, 3, 3, 16, 1, 1));
  return net;
}

struct Fixture {
  arch::AcceleratorSpec spec;
  MemoryManager manager;
  ExecutionPlan plan;
  Estimator estimator;

  Fixture(const model::Network& net, count_t kb)
      : spec(spec_kb(kb)),
        manager(spec),
        plan(manager.plan(net, Objective::kAccesses)),
        estimator(spec) {}
};

TEST(Fusion, FindsSequentialConvBoundaries) {
  const auto net = conv_chain();
  Fixture s(net, 64);
  const auto candidates = fusion_candidates(net, s.plan, s.estimator);
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_EQ(candidates[0].producer, 0u);
  EXPECT_EQ(candidates[1].producer, 1u);
  for (const auto& c : candidates) {
    EXPECT_TRUE(c.feasible);
    EXPECT_GT(c.saving(), 0u);
  }
}

TEST(Fusion, MemoryFormula) {
  const auto net = conv_chain();
  Fixture s(net, 64);
  const auto candidates = fusion_candidates(net, s.plan, s.estimator);
  const auto& a = net.layer(0);
  const auto& b = net.layer(1);
  const count_t expected =
      3u * a.padded_ifmap_w() * a.channels() + a.filter_elems() +
      3u * b.padded_ifmap_w() * b.channels() + b.filter_elems() +
      static_cast<count_t>(b.ofmap_w()) * b.ofmap_channels();
  EXPECT_EQ(candidates[0].memory_elems, expected);
}

TEST(Fusion, FusedTrafficElidesTheIntermediate) {
  const auto net = conv_chain();
  Fixture s(net, 64);
  const auto candidates = fusion_candidates(net, s.plan, s.estimator);
  const auto& a = net.layer(0);
  const auto& b = net.layer(1);
  EXPECT_EQ(candidates[0].fused_accesses,
            a.padded_ifmap_elems() + a.filter_elems() + b.filter_elems() +
                b.ofmap_elems());
  // The intermediate write+read is gone relative to the compulsory unfused
  // minimum.
  EXPECT_LE(candidates[0].fused_accesses + a.ofmap_elems() +
                b.padded_ifmap_elems() - b.ifmap_elems(),
            candidates[0].unfused_accesses + b.padded_ifmap_elems());
}

TEST(Fusion, DenseLayersAreNotFusible) {
  model::Network net("with_fc");
  net.add(model::make_conv("a", 8, 8, 4, 3, 3, 4, 1, 1));
  net.add(model::make_fully_connected("fc", 256, 10));
  Fixture s(net, 64);
  EXPECT_TRUE(fusion_candidates(net, s.plan, s.estimator).empty());
}

TEST(Fusion, PoolingBoundariesAreNotFusible) {
  // ResNet18's conv1 -> conv2_1a boundary has a pool between (shapes do
  // not chain), so it must not appear as a candidate.
  const auto net = model::zoo::resnet18();
  Fixture s(net, 64);
  for (const auto& c : fusion_candidates(net, s.plan, s.estimator)) {
    EXPECT_NE(c.producer, 0u);
  }
}

TEST(Fusion, SelectionIsNonOverlappingAndProfitable) {
  const auto net = model::zoo::mobilenetv2();
  Fixture s(net, 256);
  const auto candidates = fusion_candidates(net, s.plan, s.estimator);
  const auto chosen = select_fusions(candidates);
  std::set<std::size_t> used;
  for (const auto& c : chosen) {
    EXPECT_TRUE(c.feasible);
    EXPECT_GT(c.saving(), 0u);
    EXPECT_FALSE(used.count(c.producer));
    EXPECT_FALSE(used.count(c.producer + 1));
    used.insert(c.producer);
    used.insert(c.producer + 1);
  }
  EXPECT_FALSE(chosen.empty());
}

TEST(Fusion, FusedTotalSubtractsSavings) {
  const auto net = conv_chain();
  Fixture s(net, 64);
  const auto chosen =
      select_fusions(fusion_candidates(net, s.plan, s.estimator));
  count_t saving = 0;
  for (const auto& c : chosen) {
    saving += c.saving();
  }
  EXPECT_EQ(fused_total_accesses(s.plan, chosen),
            s.plan.total_accesses() - saving);
}

TEST(Fusion, WorksWhereInterlayerReuseCannot) {
  // MobileNet's first boundary: the 112x112x32 intermediate (392 kB) can
  // never sit whole in a 64 kB GLB, so Section 5.4 cannot link it — but a
  // 3-row rolling window can, so fusion elides it anyway.
  const auto net = model::zoo::mobilenet();
  Fixture s(net, 64);
  const Analyzer analyzer(s.spec);
  const auto linked = apply_interlayer_reuse(s.plan, net, analyzer);
  EXPECT_FALSE(linked.assignment(0).ofmap_stays_in_glb);

  const auto candidates = fusion_candidates(net, s.plan, s.estimator);
  const auto first = std::find_if(
      candidates.begin(), candidates.end(),
      [](const FusionCandidate& c) { return c.producer == 0; });
  ASSERT_NE(first, candidates.end());
  EXPECT_TRUE(first->feasible);
  EXPECT_GT(first->saving(), 2 * net.layer(0).ofmap_elems() / 2);
}

TEST(Fusion, MismatchThrows) {
  const auto net = conv_chain();
  const ExecutionPlan empty("x", "y", spec_kb(64), Objective::kAccesses);
  const Estimator est(spec_kb(64));
  EXPECT_THROW((void)fusion_candidates(net, empty, est),
               std::invalid_argument);
}

}  // namespace
}  // namespace rainbow::core
