// Unit tests for the accelerator specification and the paper's Section 4
// configuration.
#include <gtest/gtest.h>

#include <stdexcept>

#include "arch/accelerator.hpp"

namespace rainbow::arch {
namespace {

TEST(AcceleratorSpec, PaperDefaults) {
  const AcceleratorSpec spec = paper_spec(util::kib(256));
  EXPECT_EQ(spec.pe_rows, 16);
  EXPECT_EQ(spec.pe_cols, 16);
  EXPECT_EQ(spec.pe_count(), 256);
  EXPECT_EQ(spec.ops_per_cycle, 512);
  // A MAC is two ops over two cycles: 256 MACs retire per cycle.
  EXPECT_DOUBLE_EQ(spec.macs_per_cycle(), 256.0);
  EXPECT_EQ(spec.data_width_bits, 8);
  EXPECT_EQ(spec.element_bytes(), 1u);
  EXPECT_EQ(spec.glb_bytes, 256u * 1024);
  EXPECT_EQ(spec.glb_elems(), 256u * 1024);
  EXPECT_DOUBLE_EQ(spec.elements_per_cycle(), 16.0);
}

TEST(AcceleratorSpec, WiderElementsShrinkTheGlb) {
  AcceleratorSpec spec = paper_spec(util::kib(64));
  spec.data_width_bits = 32;
  EXPECT_EQ(spec.element_bytes(), 4u);
  EXPECT_EQ(spec.glb_elems(), util::kib(64) / 4);
  // Bandwidth in elements/cycle drops with wider elements.
  EXPECT_DOUBLE_EQ(spec.elements_per_cycle(), 4.0);
}

TEST(AcceleratorSpec, PaperGlbSizes) {
  const auto sizes = paper_glb_sizes();
  ASSERT_EQ(sizes.size(), 5u);
  EXPECT_EQ(sizes.front(), util::kib(64));
  EXPECT_EQ(sizes.back(), util::kib(1024));
  for (std::size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_EQ(sizes[i], sizes[i - 1] * 2);
  }
}

TEST(AcceleratorSpec, ValidateRejectsBadFields) {
  AcceleratorSpec spec = paper_spec(util::kib(64));
  spec.pe_rows = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = paper_spec(util::kib(64));
  spec.ops_per_cycle = -1;
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = paper_spec(util::kib(64));
  spec.data_width_bits = 12;  // not a whole number of bytes
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = paper_spec(util::kib(64));
  spec.glb_bytes = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = paper_spec(util::kib(64));
  spec.dram_bytes_per_cycle = 0.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace rainbow::arch
