// Network-level numerical validation: whole plans execute through their
// assigned policies and reproduce the chained golden reference exactly.
#include <gtest/gtest.h>

#include "core/manager.hpp"
#include "model/random.hpp"
#include "ref/network_exec.hpp"

namespace rainbow::ref {
namespace {

model::Network small_chain() {
  model::Network net("chain");
  net.add(model::make_conv("c1", 12, 12, 3, 3, 3, 8, 1, 1));
  net.add(model::make_depthwise("dw", 12, 12, 8, 3, 3, 1, 1));
  net.add(model::make_pointwise("pw", 12, 12, 8, 6));
  net.add(model::make_conv("c2", 12, 12, 6, 5, 5, 4, 2, 2));
  return net;
}

Tensor3 seeded_input(const model::Network& net, std::uint64_t seed) {
  return random_operands(net.layer(0), seed).ifmap;
}

TEST(NetworkExec, ChainabilityCheck) {
  EXPECT_TRUE(chainable(small_chain()));
  model::Network broken("broken");
  broken.add(model::make_conv("a", 8, 8, 3, 3, 3, 4, 1, 1));
  broken.add(model::make_conv("b", 8, 8, 7, 3, 3, 4, 1, 1));  // 7 != 4
  EXPECT_FALSE(chainable(broken));
}

TEST(NetworkExec, PlanReproducesChainedReference) {
  const auto net = small_chain();
  const Tensor3 input = seeded_input(net, 5);
  for (count_t kb : {16u, 64u}) {
    const core::MemoryManager manager(arch::paper_spec(util::kib(kb)));
    for (core::Objective obj :
         {core::Objective::kAccesses, core::Objective::kLatency}) {
      const auto plan = manager.plan(net, obj);
      const NetworkRun run = execute_network(net, plan, input, 77);
      EXPECT_EQ(run.output, reference_network(net, input, 77))
          << kb << " kB, " << core::to_string(obj);
      ASSERT_EQ(run.peaks.size(), net.size());
    }
  }
}

TEST(NetworkExec, RandomNetworksReproduceReference) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    model::RandomNetworkOptions options;
    options.input_size = 24;           // keep the numerics fast
    options.min_layers = 4;
    options.max_layers = 10;
    options.max_channels = 32;
    options.allow_dense_head = false;  // dense heads break spatial chaining
    const auto net = model::random_network(seed, options);
    if (!chainable(net)) {
      continue;
    }
    const Tensor3 input = seeded_input(net, seed);
    const core::MemoryManager manager(arch::paper_spec(util::kib(32)));
    const auto plan = manager.plan(net, core::Objective::kAccesses);
    const NetworkRun run = execute_network(net, plan, input, seed * 13);
    EXPECT_EQ(run.output, reference_network(net, input, seed * 13))
        << net.name();
  }
}

TEST(NetworkExec, BufferPeaksRespectPlannedFootprints) {
  const auto net = small_chain();
  const core::MemoryManager manager(arch::paper_spec(util::kib(64)));
  const auto plan = manager.plan(net, core::Objective::kAccesses);
  const NetworkRun run =
      execute_network(net, plan, seeded_input(net, 1), 99);
  for (std::size_t i = 0; i < net.size(); ++i) {
    const auto fp = core::working_footprint(net.layer(i),
                                            plan.assignment(i).estimate.choice);
    EXPECT_LE(run.peaks[i].ifmap, fp.ifmap) << i;
    EXPECT_LE(run.peaks[i].filter, fp.filter) << i;
    EXPECT_LE(run.peaks[i].ofmap, fp.ofmap) << i;
  }
}

TEST(NetworkExec, MismatchAndNonChainableThrow) {
  const auto net = small_chain();
  const core::MemoryManager manager(arch::paper_spec(util::kib(64)));
  const auto plan = manager.plan(net, core::Objective::kAccesses);
  const core::ExecutionPlan empty("x", "y", arch::paper_spec(util::kib(64)),
                                  core::Objective::kAccesses);
  EXPECT_THROW(
      (void)execute_network(net, empty, seeded_input(net, 1), 1),
      std::invalid_argument);

  model::Network branchy("branchy");
  branchy.add(model::make_conv("a", 8, 8, 3, 3, 3, 4, 1, 1));
  branchy.add(model::make_conv("b", 8, 8, 4, 3, 3, 4, 1, 1));
  branchy.add_branch(model::make_projection("p", 8, 8, 3, 4, 1), 0);
  const auto bplan = manager.plan(branchy, core::Objective::kAccesses);
  EXPECT_THROW((void)execute_network(branchy, bplan,
                                     random_operands(branchy.layer(0), 1).ifmap,
                                     1),
               std::invalid_argument);
}

}  // namespace
}  // namespace rainbow::ref
