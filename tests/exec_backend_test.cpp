// Equivalence suite for the blocked execution backend: every output it
// produces must be bit-identical to the naive oracle's, every reported
// peak must equal the oracle's measured peak, across the policy grid, the
// paper's model zoo, plan-assigned choices, and the odd shapes (stride >
// filter, padding, C_I = 1, 1x1 kernels) that break tiling arithmetic
// first.  int32 addition commutes, so exact equality is the contract —
// no tolerances anywhere.
#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <set>
#include <sstream>
#include <vector>

#include "core/footprint.hpp"
#include "core/manager.hpp"
#include "model/random.hpp"
#include "model/zoo/zoo.hpp"
#include "ref/blocked_kernel.hpp"
#include "ref/exec_backend.hpp"
#include "ref/network_exec.hpp"
#include "ref/policy_exec.hpp"
#include "scalesim/systolic.hpp"
#include "systolic/conv_driver.hpp"

namespace rainbow::ref {
namespace {

using core::Policy;
using core::PolicyChoice;
using model::Layer;

constexpr ExecOptions kBlockedSerial{.backend = ExecBackend::kBlocked,
                                     .threads = 1};
constexpr ExecOptions kBlockedThreaded{.backend = ExecBackend::kBlocked,
                                       .threads = 3};

/// All policies valid for `layer`, prefetch off and on.
std::vector<PolicyChoice> policy_grid(const Layer& layer) {
  const int units = layer.is_depthwise() ? layer.channels() : layer.filters();
  std::vector<PolicyChoice> grid;
  grid.reserve(2 * std::size(core::kAllPolicies) + 1);
  for (Policy p : core::kAllPolicies) {
    PolicyChoice choice{.policy = p};
    if (p == Policy::kPartialIfmap || p == Policy::kPartialPerChannel) {
      choice.filter_block = std::min(4, units);
    }
    for (bool prefetch : {false, true}) {
      choice.prefetch = prefetch;
      grid.push_back(choice);
    }
  }
  PolicyChoice tiled{.policy = Policy::kFallbackTiled,
                     .filter_block = std::min(2, units),
                     .row_stripe = std::min(2, layer.ofmap_h())};
  grid.push_back(tiled);
  return grid;
}

/// Runs one (layer, choice) through the oracle and the blocked backend
/// (serial and threaded) and asserts bit-identical outputs and peaks,
/// with policy_peaks matching the oracle's measurement exactly.
void expect_equivalent(const Layer& layer, const PolicyChoice& choice,
                       const LayerOperands& ops, const Tensor3& expected) {
  std::ostringstream context;
  context << layer << " / " << choice;

  BufferPeaks naive_peaks;
  const Tensor3 naive_out = execute_policy(layer, choice, ops, &naive_peaks);
  ASSERT_EQ(naive_out, expected) << context.str();

  BufferPeaks blocked_peaks;
  const Tensor3 blocked_out =
      execute_policy(layer, choice, ops, &blocked_peaks, kBlockedSerial);
  EXPECT_EQ(blocked_out, expected) << context.str();
  EXPECT_EQ(blocked_peaks, naive_peaks) << context.str();

  BufferPeaks threaded_peaks;
  const Tensor3 threaded_out =
      execute_policy(layer, choice, ops, &threaded_peaks, kBlockedThreaded);
  EXPECT_EQ(threaded_out, expected) << context.str();
  EXPECT_EQ(threaded_peaks, naive_peaks) << context.str();

  EXPECT_EQ(policy_peaks(layer, choice), naive_peaks) << context.str();
}

TEST(ExecBackend, StringRoundTrip) {
  EXPECT_EQ(exec_backend_from_string("naive"), ExecBackend::kNaive);
  EXPECT_EQ(exec_backend_from_string("blocked"), ExecBackend::kBlocked);
  EXPECT_EQ(to_string(ExecBackend::kNaive), "naive");
  EXPECT_EQ(to_string(ExecBackend::kBlocked), "blocked");
  EXPECT_THROW((void)exec_backend_from_string("fast"), std::invalid_argument);
}

TEST(ExecBackend, DefaultIsSettable) {
  const ExecBackend before = default_exec_backend();
  set_default_exec_backend(ExecBackend::kNaive);
  EXPECT_EQ(default_exec_backend(), ExecBackend::kNaive);
  set_default_exec_backend(before);
  EXPECT_EQ(default_exec_backend(), before);
}

// The shapes whose tiling arithmetic breaks first: stride outrunning the
// filter, padding wider than the border, single input channel, 1x1
// kernels, non-square-friendly strides.
TEST(ExecBackend, OddShapesMatchOracle) {
  const std::vector<Layer> layers = {
      model::make_conv("s2", 13, 13, 5, 3, 3, 7, 2, 1),
      model::make_conv("pad2", 9, 9, 3, 5, 5, 6, 1, 2),
      model::make_conv("ci1", 11, 11, 1, 3, 3, 9, 1, 1),
      model::make_conv("one", 8, 8, 6, 1, 1, 10, 1, 0),
      model::make_pointwise("pw", 10, 10, 7, 5),
      model::make_conv("s3", 13, 13, 4, 1, 1, 6, 3, 0),
      model::make_depthwise("dw", 12, 12, 9, 3, 3, 1, 1),
      model::make_depthwise("dws2", 11, 11, 6, 3, 3, 2, 1),
      model::make_depthwise("dw5", 10, 10, 4, 5, 5, 1, 2),
      model::make_conv("even", 14, 14, 8, 2, 2, 12, 2, 0),
  };
  for (const Layer& layer : layers) {
    const LayerOperands ops = random_operands(layer, 17);
    const Tensor3 expected = reference_forward(layer, ops);
    for (const PolicyChoice& choice : policy_grid(layer)) {
      expect_equivalent(layer, choice, ops, expected);
    }
  }
}

// Whole zoo, full policy grid on every distinct small shape, and a
// blocked-vs-reference spot check on one large shape per model.
TEST(ExecBackend, ZooShapesMatchOracle) {
  constexpr count_t kFullGridMacCap = 2'000'000;
  constexpr count_t kSpotCheckMacCap = 80'000'000;
  std::set<std::string> seen;
  for (const auto& net : model::zoo::all_models()) {
    const Layer* spot_check = nullptr;
    for (const Layer& layer : net.layers()) {
      std::ostringstream key;
      key << layer;
      if (!seen.insert(key.str()).second) {
        continue;
      }
      if (layer.macs() <= kFullGridMacCap) {
        const LayerOperands ops = random_operands(layer, 29);
        const Tensor3 expected = reference_forward(layer, ops);
        for (const PolicyChoice& choice : policy_grid(layer)) {
          expect_equivalent(layer, choice, ops, expected);
        }
      } else if (layer.macs() <= kSpotCheckMacCap &&
                 (spot_check == nullptr ||
                  layer.macs() > spot_check->macs())) {
        spot_check = &layer;
      }
    }
    if (spot_check != nullptr) {
      const LayerOperands ops = random_operands(*spot_check, 31);
      const Tensor3 expected = reference_forward(*spot_check, ops);
      EXPECT_EQ(blocked_forward(*spot_check, ops, 1), expected)
          << net.name() << " / " << *spot_check;
      EXPECT_EQ(blocked_forward(*spot_check, ops, 3), expected)
          << net.name() << " / " << *spot_check;
    }
  }
}

// Plan-assigned choices: whatever the manager picks, both backends agree
// end to end through the network chain, for every objective.
TEST(ExecBackend, PlanAssignedChoicesMatchOracle) {
  model::Network net("chain");
  net.add(model::make_conv("c1", 12, 12, 3, 3, 3, 8, 1, 1));
  net.add(model::make_depthwise("dw", 12, 12, 8, 3, 3, 1, 1));
  net.add(model::make_pointwise("pw", 12, 12, 8, 6));
  net.add(model::make_conv("c2", 12, 12, 6, 5, 5, 4, 2, 2));
  const Tensor3 input = random_operands(net.layer(0), 5).ifmap;
  const Tensor3 golden = reference_network(net, input, 77);
  for (count_t kb : {16u, 64u, 256u}) {
    const core::MemoryManager manager(arch::paper_spec(util::kib(kb)));
    for (core::Objective obj :
         {core::Objective::kAccesses, core::Objective::kLatency}) {
      const auto plan = manager.plan(net, obj);
      const NetworkRun naive = execute_network(
          net, plan, input, 77, {.backend = ExecBackend::kNaive});
      const NetworkRun blocked =
          execute_network(net, plan, input, 77, kBlockedSerial);
      const NetworkRun threaded =
          execute_network(net, plan, input, 77, kBlockedThreaded);
      EXPECT_EQ(naive.output, golden);
      EXPECT_EQ(blocked.output, golden);
      EXPECT_EQ(threaded.output, golden);
      ASSERT_EQ(blocked.peaks.size(), naive.peaks.size());
      for (std::size_t i = 0; i < naive.peaks.size(); ++i) {
        EXPECT_EQ(blocked.peaks[i], naive.peaks[i]) << "layer " << i;
        EXPECT_EQ(threaded.peaks[i], naive.peaks[i]) << "layer " << i;
      }
    }
  }
}

TEST(ExecBackend, RandomNetworksMatchOracle) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    model::RandomNetworkOptions options;
    options.input_size = 20;
    options.min_layers = 3;
    options.max_layers = 8;
    options.max_channels = 24;
    options.allow_dense_head = false;
    const auto net = model::random_network(seed, options);
    if (!chainable(net)) {
      continue;
    }
    const Tensor3 input = random_operands(net.layer(0), seed).ifmap;
    const core::MemoryManager manager(arch::paper_spec(util::kib(64)));
    const auto plan = manager.plan(net, core::Objective::kAccesses);
    const NetworkRun naive = execute_network(
        net, plan, input, seed, {.backend = ExecBackend::kNaive});
    const NetworkRun blocked =
        execute_network(net, plan, input, seed, kBlockedThreaded);
    EXPECT_EQ(blocked.output, naive.output) << "seed " << seed;
    ASSERT_EQ(blocked.peaks.size(), naive.peaks.size());
    for (std::size_t i = 0; i < naive.peaks.size(); ++i) {
      EXPECT_EQ(blocked.peaks[i], naive.peaks[i])
          << "seed " << seed << " layer " << i;
    }
  }
}

TEST(ExecBackend, BlockedMatmulMatchesNaive) {
  using systolic::Matrix;
  const std::vector<std::tuple<int, int, int>> shapes = {
      {1, 1, 1}, {1, 7, 3}, {17, 23, 5}, {33, 64, 33}, {64, 256, 48},
      {5, 1, 9}, {130, 3, 2}};
  std::uint64_t state = 99;
  for (const auto& [m, k, n] : shapes) {
    Matrix a(m, k), b(k, n);
    for (int r = 0; r < m; ++r) {
      for (int c = 0; c < k; ++c) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        a.at(r, c) = static_cast<systolic::value_t>((state >> 33) % 13) - 6;
      }
    }
    for (int r = 0; r < k; ++r) {
      for (int c = 0; c < n; ++c) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        b.at(r, c) = static_cast<systolic::value_t>((state >> 33) % 13) - 6;
      }
    }
    const Matrix expected = systolic::naive_matmul(a, b);
    EXPECT_EQ(systolic::blocked_matmul(a, b, 1), expected)
        << m << "x" << k << "x" << n;
    EXPECT_EQ(systolic::blocked_matmul(a, b, 3), expected)
        << m << "x" << k << "x" << n;
  }
  Matrix a(2, 3), b(4, 2);
  EXPECT_THROW((void)systolic::blocked_matmul(a, b), std::invalid_argument);
}

// The register-level array and its closed-form fast path return identical
// ConvRuns — ofmap, fold count and cycle count — and both land on the
// analytic timing model.
TEST(ExecBackend, RunConvBackendsAgree) {
  const auto spec = arch::paper_spec(util::kib(256));
  const std::vector<Layer> layers = {
      model::make_conv("cv", 10, 10, 6, 3, 3, 20, 1, 1),
      model::make_conv("s2", 11, 11, 4, 3, 3, 9, 2, 1),
      model::make_depthwise("dw", 9, 9, 5, 3, 3, 1, 1),
      model::make_pointwise("pw", 8, 8, 7, 40),
  };
  for (const Layer& layer : layers) {
    const LayerOperands ops = random_operands(layer, 13);
    const auto naive =
        systolic::run_conv(layer, ops, spec, ExecBackend::kNaive);
    const auto blocked =
        systolic::run_conv(layer, ops, spec, ExecBackend::kBlocked);
    const auto blocked_mt =
        systolic::run_conv(layer, ops, spec, ExecBackend::kBlocked, 3);
    EXPECT_EQ(blocked.ofmap, naive.ofmap) << layer;
    EXPECT_EQ(blocked.folds, naive.folds) << layer;
    EXPECT_EQ(blocked.cycles, naive.cycles) << layer;
    EXPECT_EQ(blocked_mt.ofmap, naive.ofmap) << layer;
    EXPECT_EQ(blocked_mt.cycles, naive.cycles) << layer;
    EXPECT_EQ(naive.cycles, scalesim::compute_cycles(layer, spec)) << layer;
    EXPECT_EQ(naive.ofmap, reference_forward(layer, ops)) << layer;
  }
}

// Invalid choices fail identically on both backends (policy_peaks replays
// the oracle's validation, not just its accounting).
TEST(ExecBackend, InvalidChoicesThrowOnBothBackends) {
  const Layer layer = model::make_conv("c", 9, 9, 4, 3, 3, 8, 1, 1);
  const LayerOperands ops = random_operands(layer, 3);
  const PolicyChoice bad_block{.policy = Policy::kPartialIfmap,
                               .filter_block = 0};
  const PolicyChoice bad_stripe{.policy = Policy::kFallbackTiled,
                                .filter_block = 1,
                                .row_stripe = 100};
  for (const PolicyChoice& choice : {bad_block, bad_stripe}) {
    EXPECT_THROW((void)execute_policy(layer, choice, ops),
                 std::invalid_argument);
    EXPECT_THROW(
        (void)execute_policy(layer, choice, ops, nullptr, kBlockedSerial),
        std::invalid_argument);
    EXPECT_THROW((void)policy_peaks(layer, choice), std::invalid_argument);
  }
}

}  // namespace
}  // namespace rainbow::ref
