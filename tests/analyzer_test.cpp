// Unit tests for Algorithm 1: feasibility filtering, objective ordering,
// tie-breaking, prefetch variants, fallback engagement, and the
// homogeneous/heterogeneous plan builders.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "core/analyzer.hpp"
#include "model/zoo/zoo.hpp"

namespace rainbow::core {
namespace {

using model::Network;
using model::make_conv;
using model::make_fully_connected;

arch::AcceleratorSpec spec_kb(count_t kb) { return arch::paper_spec(util::kib(kb)); }

Network tiny_net() {
  Network net("tiny");
  net.add(make_conv("a", 14, 14, 16, 3, 3, 32, 1, 1));
  net.add(make_conv("b", 14, 14, 32, 3, 3, 32, 1, 1));
  net.add(make_fully_connected("fc", 32, 10));
  return net;
}

TEST(Analyzer, RejectsEmptyPolicySet) {
  AnalyzerOptions options;
  options.policies.clear();
  EXPECT_THROW(Analyzer(spec_kb(64), options), std::invalid_argument);
}

TEST(Analyzer, BestEstimateIsFeasible) {
  const Analyzer analyzer(spec_kb(64));
  const auto layer = make_conv("c", 56, 56, 64, 3, 3, 128, 1, 1);
  const Estimate e = analyzer.best_estimate(layer, Objective::kAccesses);
  EXPECT_TRUE(e.feasible);
  EXPECT_LE(e.memory_elems(), util::kib(64));
}

TEST(Analyzer, BestEstimateMinimizesAccessesOverAllCandidates) {
  const Analyzer analyzer(spec_kb(64));
  const Estimator& est = analyzer.estimator();
  const auto layer = make_conv("c", 28, 28, 64, 3, 3, 128, 1, 1);
  const Estimate best = analyzer.best_estimate(layer, Objective::kAccesses);
  for (Policy p : kAllPolicies) {
    for (bool prefetch : {false, true}) {
      const Estimate e = est.estimate(layer, p, prefetch);
      if (e.feasible) {
        EXPECT_LE(best.accesses(), e.accesses())
            << to_string(p) << (prefetch ? "+p" : "");
      }
    }
  }
}

TEST(Analyzer, LatencyObjectiveMinimizesLatency) {
  const Analyzer analyzer(spec_kb(64));
  const Estimator& est = analyzer.estimator();
  const auto layer = make_conv("c", 28, 28, 64, 3, 3, 128, 1, 1);
  const Estimate best = analyzer.best_estimate(layer, Objective::kLatency);
  for (Policy p : kAllPolicies) {
    for (bool prefetch : {false, true}) {
      const Estimate e = est.estimate(layer, p, prefetch);
      if (e.feasible) {
        EXPECT_LE(best.latency_cycles, e.latency_cycles)
            << to_string(p) << (prefetch ? "+p" : "");
      }
    }
  }
}

TEST(Analyzer, AccessTieBreaksOnLatency) {
  // With a huge GLB all minimum-traffic policies tie on accesses, so the
  // tie-break must pick a prefetching variant (strictly lower latency).
  const Analyzer analyzer(spec_kb(16 * 1024));
  const auto layer = make_conv("c", 28, 28, 64, 3, 3, 128, 1, 1);
  const Estimate best = analyzer.best_estimate(layer, Objective::kAccesses);
  EXPECT_TRUE(best.choice.prefetch);
}

TEST(Analyzer, PrefetchDisabledNeverChoosesPrefetch) {
  AnalyzerOptions options;
  options.allow_prefetch = false;
  const Analyzer analyzer(spec_kb(1024), options);
  const Network net = tiny_net();
  const ExecutionPlan plan = analyzer.heterogeneous(net, Objective::kLatency);
  for (const LayerAssignment& a : plan.assignments()) {
    EXPECT_FALSE(a.estimate.choice.prefetch);
  }
  EXPECT_DOUBLE_EQ(plan.prefetch_coverage(), 0.0);
}

TEST(Analyzer, FallbackEngagesWhenNothingFits) {
  // 8 kB GLB: none of the six policies fits this layer (P5 with n=1 needs
  // one full ofmap channel 56x56 = 3.1k plus window, fits actually — use a
  // bigger ofmap: 112x112 = 12.5k > 8k).
  arch::AcceleratorSpec tiny = spec_kb(64);
  tiny.glb_bytes = 8 * 1024;
  const Analyzer analyzer(tiny);
  const auto layer = make_conv("c", 112, 112, 64, 3, 3, 128, 1, 1);
  const Estimate e = analyzer.best_estimate(layer, Objective::kAccesses);
  EXPECT_TRUE(e.feasible);
  EXPECT_EQ(e.choice.policy, Policy::kFallbackTiled);
}

TEST(Analyzer, ThrowsWhenLayerCannotExecute) {
  arch::AcceleratorSpec micro = spec_kb(64);
  micro.glb_bytes = 256;  // smaller than any working set of this layer
  const Analyzer analyzer(micro);
  const auto layer = make_conv("c", 224, 224, 64, 3, 3, 128, 1, 1);
  EXPECT_THROW((void)analyzer.best_estimate(layer, Objective::kAccesses),
               std::runtime_error);
}

TEST(Analyzer, HeterogeneousCoversEveryLayer) {
  const Analyzer analyzer(spec_kb(64));
  const Network net = tiny_net();
  const ExecutionPlan plan = analyzer.heterogeneous(net, Objective::kAccesses);
  ASSERT_EQ(plan.size(), net.size());
  EXPECT_TRUE(plan.feasible());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(plan.assignment(i).layer_index, i);
  }
}

TEST(Analyzer, HomogeneousUsesOnePolicy) {
  const Analyzer analyzer(spec_kb(1024));
  const Network net = tiny_net();
  const ExecutionPlan plan =
      analyzer.homogeneous(net, Policy::kFilterReuse, false, Objective::kAccesses);
  for (const LayerAssignment& a : plan.assignments()) {
    EXPECT_EQ(a.estimate.choice.policy, Policy::kFilterReuse);
  }
}

TEST(Analyzer, HomogeneousDegradesToP5WhenPolicyDoesNotFit) {
  const Analyzer analyzer(spec_kb(64));
  Network net("one");
  // Intra-layer reuse needs ~2.3 MB here; P5 fits with a large block.
  net.add(make_conv("big", 7, 7, 512, 3, 3, 512, 1, 1));
  const ExecutionPlan plan =
      analyzer.homogeneous(net, Policy::kIntraLayer, false, Objective::kAccesses);
  EXPECT_TRUE(plan.feasible());
  EXPECT_EQ(plan.assignment(0).estimate.choice.policy,
            Policy::kPartialPerChannel);
}

TEST(Analyzer, HomogeneousFallsBackToTilingAsLastResort) {
  // 8 kB: even P5 with n=1 cannot hold one 112x112 ofmap channel, so the
  // degradation chain ends at row-striped constrained tiling.
  arch::AcceleratorSpec tiny = spec_kb(64);
  tiny.glb_bytes = 8 * 1024;
  const Analyzer analyzer(tiny);
  Network net("one");
  net.add(make_conv("big", 112, 112, 64, 3, 3, 128, 1, 1));
  const ExecutionPlan plan = analyzer.homogeneous(net, Policy::kIntraLayer,
                                                  false, Objective::kAccesses);
  EXPECT_TRUE(plan.feasible());
  EXPECT_EQ(plan.assignment(0).estimate.choice.policy, Policy::kFallbackTiled);
}

TEST(Analyzer, BestHomogeneousBeatsOrTiesEveryFixedPolicy) {
  const Analyzer analyzer(spec_kb(64));
  const Network net = model::zoo::mobilenet();
  const ExecutionPlan best = analyzer.best_homogeneous(net, Objective::kAccesses);
  for (Policy p : kAllPolicies) {
    const ExecutionPlan plan =
        analyzer.homogeneous(net, p, false, Objective::kAccesses);
    EXPECT_LE(best.total_accesses(), plan.total_accesses()) << to_string(p);
  }
}

TEST(Analyzer, HomogeneousPlansUseTheirPolicyOrItsDegradation) {
  // A homogeneous plan uses its named policy on every layer the policy
  // fits, and the fixed P5/tiled degradation elsewhere — never a free
  // per-layer choice.
  const Analyzer analyzer(spec_kb(64));
  const Network net = model::zoo::mobilenetv2();
  for (Policy p : kAllPolicies) {
    const ExecutionPlan plan =
        analyzer.homogeneous(net, p, false, Objective::kAccesses);
    for (const LayerAssignment& a : plan.assignments()) {
      const Policy used = a.estimate.choice.policy;
      EXPECT_TRUE(used == p || used == Policy::kPartialPerChannel ||
                  used == Policy::kFallbackTiled)
          << to_string(p) << " layer used " << to_string(used);
    }
  }
}

TEST(Analyzer, HetNeverWorseThanHom) {
  // The heterogeneous plan optimizes each layer independently, so its total
  // can never exceed the best homogeneous plan's — the paper's core claim.
  for (count_t kb : {64u, 128u, 256u}) {
    const Analyzer analyzer(spec_kb(kb));
    const Network net = model::zoo::resnet18();
    const ExecutionPlan het = analyzer.heterogeneous(net, Objective::kAccesses);
    const ExecutionPlan hom = analyzer.best_homogeneous(net, Objective::kAccesses);
    EXPECT_LE(het.total_accesses(), hom.total_accesses()) << kb << " kB";
  }
}

TEST(Analyzer, LatencyPlanNeverSlowerThanAccessPlan) {
  const Analyzer analyzer(spec_kb(64));
  const Network net = model::zoo::mobilenet();
  const ExecutionPlan for_lat = analyzer.heterogeneous(net, Objective::kLatency);
  const ExecutionPlan for_acc = analyzer.heterogeneous(net, Objective::kAccesses);
  EXPECT_LE(for_lat.total_latency_cycles(), for_acc.total_latency_cycles());
  // ... and the access plan never moves more data than the latency plan.
  EXPECT_LE(for_acc.total_accesses(), for_lat.total_accesses());
}

TEST(Analyzer, ExplainListsAllCandidatesAndMarksTheWinner) {
  const Analyzer analyzer(spec_kb(64));
  const auto layer = make_conv("c", 28, 28, 64, 3, 3, 128, 1, 1);
  const auto candidates = analyzer.explain(layer, Objective::kAccesses);
  // 6 policies + fallback, each with and without prefetch.
  EXPECT_EQ(candidates.size(), 14u);
  std::size_t chosen = 0;
  for (const auto& c : candidates) {
    chosen += c.chosen ? 1 : 0;
  }
  EXPECT_EQ(chosen, 1u);
  // The marked winner equals best_estimate's choice.
  const Estimate best = analyzer.best_estimate(layer, Objective::kAccesses);
  for (const auto& c : candidates) {
    if (c.chosen) {
      EXPECT_EQ(c.estimate.choice, best.choice);
      EXPECT_EQ(c.estimate.accesses(), best.accesses());
    }
  }
}

TEST(Analyzer, ExplainIncludesInfeasibleCandidates) {
  const Analyzer analyzer(spec_kb(64));
  // Intra-layer reuse needs megabytes here: listed but not chosen.
  const auto layer = make_conv("big", 56, 56, 64, 3, 3, 192, 1, 1);
  const auto candidates = analyzer.explain(layer, Objective::kAccesses);
  bool saw_infeasible = false;
  for (const auto& c : candidates) {
    if (!c.estimate.feasible) {
      saw_infeasible = true;
      EXPECT_FALSE(c.chosen);
    }
  }
  EXPECT_TRUE(saw_infeasible);
}

TEST(Analyzer, RestrictedPolicySetIsHonoured) {
  AnalyzerOptions options;
  options.policies = {Policy::kFilterReuse};
  const Analyzer analyzer(spec_kb(1024), options);
  const Network net = tiny_net();
  const ExecutionPlan plan = analyzer.heterogeneous(net, Objective::kAccesses);
  for (const LayerAssignment& a : plan.assignments()) {
    EXPECT_EQ(a.estimate.choice.policy, Policy::kFilterReuse);
  }
}

}  // namespace
}  // namespace rainbow::core
