// The generated diagnostic registry (validate/diag_registry.hpp) is the
// single source of truth for every V/L/S/R/O code: this test pins the
// invariants the catalog relies on — codes unique, well-formed, ordered
// within their family, enum <-> string round-trips, and every code
// documented in docs/static_analysis.md's catalog.
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "validate/diagnostics.hpp"

namespace rainbow::validate {
namespace {

std::string read_file(const std::string& relative) {
  const std::string path = std::string(RAINBOW_SOURCE_DIR) + "/" + relative;
  std::ifstream in(path);
  EXPECT_TRUE(in) << "missing " << path;
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(DiagRegistry, CodesAreUniqueAndWellFormed) {
  std::set<std::string> seen;
  for (const CodeInfo& info : kCodeRegistry) {
    const std::string code(info.code);
    EXPECT_TRUE(seen.insert(code).second) << "duplicate code " << code;
    ASSERT_EQ(code.size(), 4u) << code;
    EXPECT_TRUE(code[0] == 'V' || code[0] == 'L' || code[0] == 'S' ||
                code[0] == 'R' || code[0] == 'O')
        << code;
    for (std::size_t i = 1; i < 4; ++i) {
      EXPECT_TRUE(code[i] >= '0' && code[i] <= '9') << code;
    }
    EXPECT_FALSE(info.description.empty()) << code;
  }
  EXPECT_EQ(seen.size(), kCodeCount);
}

TEST(DiagRegistry, FamiliesAreContiguousAndAscending) {
  // Within each letter family the numeric part ascends by exactly one —
  // a new code slots at the end of its family, never into a gap.
  std::string prev_family;
  int prev_number = 0;
  std::set<std::string> families_done;
  for (const CodeInfo& info : kCodeRegistry) {
    const std::string family(1, info.code[0]);
    const int number = std::stoi(std::string(info.code.substr(1)));
    if (family == prev_family) {
      EXPECT_EQ(number, prev_number + 1) << info.code;
    } else {
      EXPECT_TRUE(families_done.insert(family).second)
          << "family " << family << " is interleaved";
      EXPECT_EQ(number, 1) << info.code;
    }
    prev_family = family;
    prev_number = number;
  }
}

TEST(DiagRegistry, EnumRoundTripsThroughRegistry) {
  for (std::size_t i = 0; i < kCodeCount; ++i) {
    const Code code = static_cast<Code>(i);
    EXPECT_EQ(code_string(code), kCodeRegistry[i].code);
    EXPECT_EQ(code_description(code), kCodeRegistry[i].description);
  }
}

TEST(DiagRegistry, EveryCodeIsDocumented) {
  const std::string catalog = read_file("docs/static_analysis.md");
  for (const CodeInfo& info : kCodeRegistry) {
    EXPECT_NE(catalog.find(info.code), std::string::npos)
        << info.code << " missing from docs/static_analysis.md";
  }
}

TEST(DiagRegistry, SpotCheckKnownCodes) {
  EXPECT_EQ(code_string(Code::kRaceRefill), std::string("R001"));
  EXPECT_EQ(code_string(Code::kRaceRedundantBarrier), std::string("R008"));
  EXPECT_EQ(code_string(Code::kStreamCriticalPathMismatch),
            std::string("S016"));
}

}  // namespace
}  // namespace rainbow::validate
