// Tests for the extra (beyond-the-paper) zoo models and their interaction
// with the planner — VGG16/AlexNet are the weight-dominated extreme the
// six mobile-era models don't cover.
#include <gtest/gtest.h>

#include "core/manager.hpp"
#include "model/zoo/zoo.hpp"

namespace rainbow::model::zoo {
namespace {

TEST(ExtraZoo, Vgg16Structure) {
  const Network net = vgg16();
  EXPECT_EQ(net.size(), 16u);  // 13 convs + 3 dense layers
  EXPECT_EQ(net.count_kind(LayerKind::kConv), 13u);
  EXPECT_EQ(net.count_kind(LayerKind::kFullyConnected), 3u);
  // ~15.5 GMACs for one 224x224 inference.
  const double gmacs = static_cast<double>(net.total_macs()) / 1e9;
  EXPECT_NEAR(gmacs, 15.5, 0.3);
  // 138M parameters, ~134M of them in the dense layers + convs here
  // (biases excluded).
  const double mparams = static_cast<double>(net.total_filter_elems()) / 1e6;
  EXPECT_NEAR(mparams, 138.0, 2.0);
}

TEST(ExtraZoo, AlexNetStructure) {
  const Network net = alexnet();
  EXPECT_EQ(net.size(), 8u);
  EXPECT_EQ(net.count_kind(LayerKind::kConv), 5u);
  EXPECT_EQ(net.count_kind(LayerKind::kFullyConnected), 3u);
  EXPECT_EQ(net.layer(0).ofmap_h(), 55);  // 11x11/4 on 227
  // Single-tower (ungrouped) AlexNet: the original's grouped convolutions
  // halve conv2/4/5, giving the often-quoted ~0.7 GMACs; ungrouped is ~1.14.
  const double gmacs = static_cast<double>(net.total_macs()) / 1e9;
  EXPECT_NEAR(gmacs, 1.14, 0.1);
}

TEST(ExtraZoo, ByNameFindsExtras) {
  EXPECT_EQ(by_name("vgg16").name(), "VGG16");
  EXPECT_EQ(by_name("AlexNet").name(), "AlexNet");
}

TEST(ExtraZoo, ExtrasAreNotInThePaperSuite) {
  for (const Network& net : all_models()) {
    EXPECT_NE(net.name(), "VGG16");
    EXPECT_NE(net.name(), "AlexNet");
  }
}

TEST(ExtraZoo, PlannerHandlesWeightDominatedModels) {
  // VGG16's fc6 weights are 98 MB at 8-bit: every policy that wants them
  // resident is infeasible at 64 kB, yet the plan must still exist and the
  // flexible scheme must still beat a weight-starved fixed split.
  const core::MemoryManager manager(arch::paper_spec(util::kib(64)));
  for (const Network& net : {vgg16(), alexnet()}) {
    const auto plan = manager.plan(net, core::Objective::kAccesses);
    EXPECT_TRUE(plan.feasible()) << net.name();
    EXPECT_GT(plan.total_access_mb(), 0.0) << net.name();
  }
}

TEST(ExtraZoo, BatchAmortizationIsDramaticForVgg) {
  // 90% of VGG16's traffic is weights: batching should slash per-image
  // traffic far harder than for any of the paper's models.
  core::ManagerOptions b16;
  b16.analyzer.estimator.batch = 16;
  const auto spec = arch::paper_spec(util::kib(256));
  const auto net = vgg16();
  const auto plan1 =
      core::MemoryManager(spec).plan(net, core::Objective::kAccesses);
  const auto plan16 =
      core::MemoryManager(spec, b16).plan(net, core::Objective::kAccesses);
  const double per_image_1 = plan1.total_access_mb();
  const double per_image_16 = plan16.total_access_mb() / 16.0;
  EXPECT_LT(per_image_16, 0.5 * per_image_1);
}

}  // namespace
}  // namespace rainbow::model::zoo
