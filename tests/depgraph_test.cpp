// Structural tests for the happens-before dependence graph: chain
// decomposition, vector-clock happens-before, prefetch overlap modeled as
// genuine concurrency, cycle handling, and the critical-path query against
// engine::schedule_latency on hand-built fixtures.  Zoo-wide critical-path
// and race coverage lives in critical_path_test.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "analysis/depgraph.hpp"
#include "analysis/race.hpp"
#include "arch/accelerator.hpp"
#include "codegen/lower.hpp"
#include "core/manager.hpp"
#include "engine/engine.hpp"
#include "model/zoo/zoo.hpp"

namespace rainbow::analysis {
namespace {

using codegen::Command;
using codegen::DataKind;
using codegen::LayerProgram;
using codegen::Program;

/// Serial one-layer fixture matching stream_mutation_test's base stream.
Program serial_program() {
  Program program;
  program.model = "fixture";
  program.spec = arch::paper_spec(util::kib(64));
  LayerProgram layer;
  layer.layer_index = 0;
  layer.layer_name = "l0";
  layer.choice.prefetch = false;
  layer.commands = {
      {.op = Command::Op::kAlloc, .region = 0, .kind = DataKind::kIfmap,
       .elems = 16},
      {.op = Command::Op::kAlloc, .region = 1, .kind = DataKind::kFilter,
       .elems = 8},
      {.op = Command::Op::kAlloc, .region = 2, .kind = DataKind::kOfmap,
       .elems = 8},
      {.op = Command::Op::kLoad, .region = 0, .kind = DataKind::kIfmap,
       .elems = 16},
      {.op = Command::Op::kLoad, .region = 1, .kind = DataKind::kFilter,
       .elems = 8},
      {.op = Command::Op::kCompute, .macs = 100},
      {.op = Command::Op::kStore, .region = 2, .kind = DataKind::kOfmap,
       .elems = 8},
      {.op = Command::Op::kBarrier},
      {.op = Command::Op::kFree, .region = 0, .kind = DataKind::kIfmap,
       .elems = 16},
      {.op = Command::Op::kFree, .region = 1, .kind = DataKind::kFilter,
       .elems = 8},
      {.op = Command::Op::kFree, .region = 2, .kind = DataKind::kOfmap,
       .elems = 8},
  };
  program.layers.push_back(std::move(layer));
  return program;
}

/// Tile-tagged double-buffered fixture: two tiles, the filter resident
/// (loaded once), ifmap refilled per tile, ofmap drained per tile.
Program tagged_program() {
  Program program;
  program.model = "fixture";
  program.spec = arch::paper_spec(util::kib(64));
  LayerProgram layer;
  layer.layer_index = 0;
  layer.layer_name = "l0";
  layer.choice.prefetch = true;
  layer.commands = {
      {.op = Command::Op::kAlloc, .region = 0, .kind = DataKind::kIfmap,
       .elems = 16},
      {.op = Command::Op::kAlloc, .region = 1, .kind = DataKind::kFilter,
       .elems = 8},
      {.op = Command::Op::kAlloc, .region = 2, .kind = DataKind::kOfmap,
       .elems = 8},
      {.op = Command::Op::kLoad, .region = 0, .kind = DataKind::kIfmap,
       .elems = 8, .tile = 0},
      {.op = Command::Op::kLoad, .region = 1, .kind = DataKind::kFilter,
       .elems = 8, .tile = 0},
      {.op = Command::Op::kCompute, .macs = 100, .tile = 0},
      {.op = Command::Op::kStore, .region = 2, .kind = DataKind::kOfmap,
       .elems = 4, .tile = 0},
      {.op = Command::Op::kLoad, .region = 0, .kind = DataKind::kIfmap,
       .elems = 8, .tile = 1},
      {.op = Command::Op::kCompute, .macs = 100, .tile = 1},
      {.op = Command::Op::kStore, .region = 2, .kind = DataKind::kOfmap,
       .elems = 4, .tile = 1},
      {.op = Command::Op::kBarrier},
      {.op = Command::Op::kFree, .region = 0, .kind = DataKind::kIfmap,
       .elems = 16},
      {.op = Command::Op::kFree, .region = 1, .kind = DataKind::kFilter,
       .elems = 8},
      {.op = Command::Op::kFree, .region = 2, .kind = DataKind::kOfmap,
       .elems = 8},
  };
  program.layers.push_back(std::move(layer));
  return program;
}

std::uint32_t find_node(const DepGraph& graph, Command::Op op,
                        std::int32_t tile, int region = -2) {
  for (const DepNode& node : graph.nodes()) {
    if (node.cmd.op == op && node.cmd.tile == tile &&
        (region == -2 || node.cmd.region == region)) {
      return node.index;
    }
  }
  ADD_FAILURE() << "fixture node not found";
  return 0;
}

TEST(DepGraph, SerialLayerIsTotallyOrdered) {
  const Program program = serial_program();
  const DepGraph graph = DepGraph::build(program);
  ASSERT_EQ(graph.nodes().size(), program.layers[0].commands.size());
  EXPECT_FALSE(graph.is_cyclic());
  EXPECT_EQ(graph.topological_order().size(), graph.nodes().size());
  // A serial layer admits no concurrency at all: every pair is ordered in
  // issue order.
  const auto n = static_cast<std::uint32_t>(graph.nodes().size());
  for (std::uint32_t a = 0; a < n; ++a) {
    for (std::uint32_t b = a + 1; b < n; ++b) {
      EXPECT_TRUE(graph.happens_before(a, b)) << a << " !hb " << b;
      EXPECT_FALSE(graph.happens_before(b, a)) << b << " hb " << a;
    }
  }
  EXPECT_FALSE(graph.happens_before(0, 0)) << "hb must be irreflexive";
}

TEST(DepGraph, ChainDecomposition) {
  const DepGraph graph = DepGraph::build(tagged_program());
  // Chain positions are 1..n per resource (DMA positions follow the
  // channel's drain order, which defers stores behind the next refill, so
  // they are a permutation of issue order rather than a prefix count).
  std::array<std::vector<std::uint32_t>, kDepResourceCount> positions;
  for (const DepNode& node : graph.nodes()) {
    positions[static_cast<std::size_t>(node.resource)].push_back(
        node.chain_pos);
  }
  for (auto& chain : positions) {
    std::sort(chain.begin(), chain.end());
    for (std::uint32_t i = 0; i < chain.size(); ++i) {
      EXPECT_EQ(chain[i], i + 1);
    }
  }
  // 3 allocs + barrier + 3 frees on control, 3 loads + 2 stores on DMA,
  // 2 computes on PE.
  EXPECT_EQ(positions[static_cast<std::size_t>(DepResource::kControl)].size(),
            7u);
  EXPECT_EQ(positions[static_cast<std::size_t>(DepResource::kDma)].size(), 5u);
  EXPECT_EQ(positions[static_cast<std::size_t>(DepResource::kPe)].size(), 2u);
}

TEST(DepGraph, PrefetchOverlapIsGenuineConcurrency) {
  const DepGraph graph = DepGraph::build(tagged_program());
  const std::uint32_t load1 = find_node(graph, Command::Op::kLoad, 1);
  const std::uint32_t compute0 = find_node(graph, Command::Op::kCompute, 0);
  const std::uint32_t compute1 = find_node(graph, Command::Op::kCompute, 1);
  const std::uint32_t store0 = find_node(graph, Command::Op::kStore, 0);
  const std::uint32_t store1 = find_node(graph, Command::Op::kStore, 1);
  // The next tile's refill overlaps the current compute — that is the
  // point of double buffering, and the graph must NOT order them.
  EXPECT_FALSE(graph.ordered(load1, compute0));
  // But the waits the hardware really performs are present: a compute
  // waits the loads issued for its tile, a store waits its compute.
  EXPECT_TRUE(graph.happens_before(load1, compute1));
  EXPECT_TRUE(graph.happens_before(compute0, store0));
  EXPECT_TRUE(graph.happens_before(compute1, store1));
  // Deferred drain: tile 0's store runs behind tile 1's refill on the
  // single DMA channel.
  EXPECT_TRUE(graph.happens_before(load1, store0));
}

TEST(DepGraph, RefillPhasesAlternate) {
  const DepGraph graph = DepGraph::build(tagged_program());
  const auto phase_of = [&](std::uint32_t id, int region) -> int {
    for (const RegionAccess& a : graph.nodes()[id].accesses) {
      if (a.region == region) {
        return a.phase;
      }
    }
    return -2;
  };
  const std::uint32_t load_r0_t0 = find_node(graph, Command::Op::kLoad, 0, 0);
  const std::uint32_t load_r0_t1 = find_node(graph, Command::Op::kLoad, 1, 0);
  const std::uint32_t load_r1 = find_node(graph, Command::Op::kLoad, 0, 1);
  EXPECT_EQ(phase_of(load_r0_t0, 0), 0);
  EXPECT_EQ(phase_of(load_r0_t1, 0), 1);
  // The resident filter is loaded once: single-generation, so wild.
  EXPECT_EQ(phase_of(load_r1, 1), -1);
}

TEST(DepGraph, AddEdgeCanCreateCycle) {
  DepGraph graph = DepGraph::build(serial_program());
  ASSERT_FALSE(graph.is_cyclic());
  graph.add_edge(5, 3, DepEdgeKind::kWait);  // compute before its own load
  EXPECT_TRUE(graph.is_cyclic());
  EXPECT_TRUE(graph.topological_order().empty());
  EXPECT_THROW((void)graph.happens_before(0, 1), std::logic_error);
  EXPECT_THROW((void)graph.critical_path(), std::logic_error);
}

TEST(DepGraph, SerialCriticalPathMatchesEngine) {
  const Program program = serial_program();
  const DepGraph graph = DepGraph::build(program);
  const CriticalPath path = graph.critical_path();
  const std::vector<engine::TileOp> schedule = {
      {.load_ifmap = 16, .load_filter = 8, .macs = 100, .store_ofmap = 8}};
  const double expected = engine::schedule_latency(
      schedule, program.spec.elements_per_cycle(),
      program.spec.effective_macs_per_cycle(), /*prefetch=*/false);
  EXPECT_NEAR(path.total_cycles, expected, 1e-9 * expected);
  ASSERT_EQ(path.layer_cycles.size(), 1u);
  EXPECT_DOUBLE_EQ(path.layer_cycles[0], path.total_cycles);
  EXPECT_FALSE(path.nodes.empty());
}

TEST(DepGraph, PrefetchCriticalPathMatchesEngine) {
  const Program program = tagged_program();
  const DepGraph graph = DepGraph::build(program);
  const CriticalPath path = graph.critical_path();
  const std::vector<engine::TileOp> schedule = {
      {.load_ifmap = 8, .load_filter = 8, .macs = 100, .store_ofmap = 4},
      {.load_ifmap = 8, .load_filter = 0, .macs = 100, .store_ofmap = 4}};
  const double expected = engine::schedule_latency(
      schedule, program.spec.elements_per_cycle(),
      program.spec.effective_macs_per_cycle(), /*prefetch=*/true);
  EXPECT_NEAR(path.total_cycles, expected, 1e-9 * expected);
  // The reported path visits nodes in execution order.
  for (std::size_t i = 1; i < path.nodes.size(); ++i) {
    EXPECT_TRUE(graph.happens_before(path.nodes[i - 1], path.nodes[i]));
  }
}

TEST(DepGraph, CleanFixturesHaveNoRaces) {
  for (const Program& program : {serial_program(), tagged_program()}) {
    const RaceReport result = analyze_races(program);
    EXPECT_TRUE(result.clean()) << result.report.summary();
    EXPECT_FALSE(result.cyclic);
    EXPECT_GT(result.nodes, 0u);
    EXPECT_GT(result.edges, 0u);
  }
}

TEST(DepGraph, LoweredZooProgramIsOrderedAndAcyclic) {
  const model::Network net = model::zoo::mobilenet();
  const core::MemoryManager manager(arch::paper_spec(util::kib(128)));
  const core::ExecutionPlan plan = manager.plan(net, core::Objective::kAccesses);
  const Program program = codegen::lower(plan, net);
  const DepGraph graph = DepGraph::build(program);
  EXPECT_EQ(graph.nodes().size(), program.total_commands());
  EXPECT_FALSE(graph.is_cyclic());
  EXPECT_EQ(graph.layer_count(), program.layers.size());
  // Every command got a stable nonzero id from lower(), uniquely.
  std::vector<std::uint32_t> ids;
  for (const DepNode& node : graph.nodes()) {
    ids.push_back(node.cmd.id);
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_NE(ids.front(), 0u);
  EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end());
  // The topological order exists and respects every edge.
  const std::vector<std::uint32_t> topo = graph.topological_order();
  ASSERT_EQ(topo.size(), graph.nodes().size());
  std::vector<std::uint32_t> pos(topo.size());
  for (std::uint32_t i = 0; i < topo.size(); ++i) {
    pos[topo[i]] = i;
  }
  for (const DepEdge& e : graph.edges()) {
    if (e.kind == DepEdgeKind::kDep) {
      continue;  // checked, not enforced
    }
    EXPECT_LT(pos[e.from], pos[e.to]);
  }
}

}  // namespace
}  // namespace rainbow::analysis
