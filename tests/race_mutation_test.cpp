// Mutation matrix for the race detector: one deliberately corrupted
// command stream per R-diagnostic, each asserting that exactly its own
// code fires and every other R-code stays quiet — the same discipline
// stream_mutation_test.cpp applies to the S-codes.  The serial/fallback
// fixtures mirror stream_mutation's base stream; the tagged fixtures add
// tile tags so the graph models real double-buffer concurrency.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "analysis/race.hpp"
#include "codegen/lower.hpp"
#include "core/manager.hpp"
#include "model/zoo/zoo.hpp"

namespace rainbow::analysis {
namespace {

using codegen::Command;
using codegen::DataKind;
using codegen::LayerProgram;
using codegen::Program;
using validate::Code;

constexpr Code kAllRaceCodes[] = {
    Code::kRaceRefill,          Code::kRaceDrain,
    Code::kRaceUnorderedWrites, Code::kRaceFreeInFlight,
    Code::kRacePhaseAlias,      Code::kRaceGraphCycle,
    Code::kRaceReorderViolation, Code::kRaceRedundantBarrier};

/// The mutated stream must fire `expected` (exactly `hits` times) and no
/// other R-code at all.
void expect_only(const validate::ValidationReport& report, Code expected,
                 std::size_t hits = 1) {
  for (const Code code : kAllRaceCodes) {
    if (code == expected) {
      EXPECT_EQ(report.count(code), hits)
          << validate::code_string(code) << "\n" << report.summary();
    } else {
      EXPECT_EQ(report.count(code), 0u)
          << validate::code_string(code) << "\n" << report.summary();
    }
  }
}

/// Minimal clean one-layer stream (untagged, so prefetch=true analyzes in
/// fallback mode: computes wait all earlier loads, stores their compute).
Program base_program(bool prefetch) {
  Program program;
  program.model = "fixture";
  program.spec = arch::paper_spec(util::kib(64));
  LayerProgram layer;
  layer.layer_index = 0;
  layer.layer_name = "l0";
  layer.choice.prefetch = prefetch;
  layer.commands = {
      {.op = Command::Op::kAlloc, .region = 0, .kind = DataKind::kIfmap,
       .elems = 16},
      {.op = Command::Op::kAlloc, .region = 1, .kind = DataKind::kFilter,
       .elems = 8},
      {.op = Command::Op::kAlloc, .region = 2, .kind = DataKind::kOfmap,
       .elems = 8},
      {.op = Command::Op::kLoad, .region = 0, .kind = DataKind::kIfmap,
       .elems = 16},
      {.op = Command::Op::kLoad, .region = 1, .kind = DataKind::kFilter,
       .elems = 8},
      {.op = Command::Op::kCompute, .macs = 100},
      {.op = Command::Op::kStore, .region = 2, .kind = DataKind::kOfmap,
       .elems = 8},
      {.op = Command::Op::kBarrier},
      {.op = Command::Op::kFree, .region = 0, .kind = DataKind::kIfmap,
       .elems = 16},
      {.op = Command::Op::kFree, .region = 1, .kind = DataKind::kFilter,
       .elems = 8},
      {.op = Command::Op::kFree, .region = 2, .kind = DataKind::kOfmap,
       .elems = 8},
  };
  program.layers.push_back(std::move(layer));
  return program;
}

std::vector<Command>& commands(Program& program) {
  return program.layers[0].commands;
}

void move_command(Program& program, std::size_t from, std::size_t to) {
  auto& cmds = commands(program);
  Command cmd = cmds[from];
  cmds.erase(cmds.begin() + static_cast<std::ptrdiff_t>(from));
  cmds.insert(cmds.begin() + static_cast<std::ptrdiff_t>(to), cmd);
}

TEST(RaceMutation, BaseFixturesAreClean) {
  for (const bool prefetch : {false, true}) {
    const RaceReport result = analyze_races(base_program(prefetch));
    EXPECT_TRUE(result.clean()) << result.report.summary();
  }
}

TEST(RaceMutation, R001RefillRacesComputeRead) {
  // The ifmap load is issued after the compute that consumes it: in the
  // overlap window the DMA write races the PE's read of the same region.
  auto program = base_program(/*prefetch=*/true);
  move_command(program, 3, 5);  // load r0 now follows the compute
  expect_only(analyze_races(program).report, Code::kRaceRefill);
}

TEST(RaceMutation, R002DrainRacesComputeWrite) {
  // The ofmap store is issued before the compute that produces the data:
  // nothing orders the drain behind the PE's write.
  auto program = base_program(/*prefetch=*/true);
  move_command(program, 6, 5);  // store r2 now precedes the compute
  expect_only(analyze_races(program).report, Code::kRaceDrain);
}

TEST(RaceMutation, R003UnorderedWrites) {
  // A stray refill into the ofmap region between compute and drain: the
  // DMA write and the PE write to the same region are unordered.
  auto program = base_program(/*prefetch=*/true);
  commands(program).insert(
      commands(program).begin() + 6,
      Command{.op = Command::Op::kLoad, .region = 2, .kind = DataKind::kOfmap,
              .elems = 8});
  expect_only(analyze_races(program).report, Code::kRaceUnorderedWrites);
}

TEST(RaceMutation, R004FreeWhileInFlight) {
  // Without the barrier nothing orders the frees behind the async work:
  // all three regions are released while DMA/compute may still be running.
  auto program = base_program(/*prefetch=*/true);
  commands(program).erase(commands(program).begin() + 7);
  expect_only(analyze_races(program).report, Code::kRaceFreeInFlight, 3);
}

TEST(RaceMutation, R005PhaseAliasWithoutConsumer) {
  // Tagged double-buffered stream whose ifmap is refilled three times
  // (generations 0/1/2 -> phases 0/1/0) but only consumed at tile 2: the
  // generation-2 refill overwrites phase 0 before any compute read the
  // generation-0 data.  Every pair is still chain-ordered on the DMA
  // channel, so no other R-code fires — R005 is exactly the lost-update
  // case happens-before cannot see.
  Program program;
  program.model = "fixture";
  program.spec = arch::paper_spec(util::kib(64));
  LayerProgram layer;
  layer.layer_index = 0;
  layer.layer_name = "l0";
  layer.choice.prefetch = true;
  layer.commands = {
      {.op = Command::Op::kAlloc, .region = 0, .kind = DataKind::kIfmap,
       .elems = 16},
      {.op = Command::Op::kAlloc, .region = 1, .kind = DataKind::kFilter,
       .elems = 8},
      {.op = Command::Op::kAlloc, .region = 2, .kind = DataKind::kOfmap,
       .elems = 8},
      {.op = Command::Op::kLoad, .region = 0, .kind = DataKind::kIfmap,
       .elems = 8, .tile = 0},
      {.op = Command::Op::kLoad, .region = 1, .kind = DataKind::kFilter,
       .elems = 8, .tile = 0},
      {.op = Command::Op::kLoad, .region = 0, .kind = DataKind::kIfmap,
       .elems = 8, .tile = 1},
      {.op = Command::Op::kLoad, .region = 0, .kind = DataKind::kIfmap,
       .elems = 8, .tile = 2},
      {.op = Command::Op::kCompute, .macs = 100, .tile = 2},
      {.op = Command::Op::kStore, .region = 2, .kind = DataKind::kOfmap,
       .elems = 4, .tile = 2},
      {.op = Command::Op::kBarrier},
      {.op = Command::Op::kFree, .region = 0, .kind = DataKind::kIfmap,
       .elems = 16},
      {.op = Command::Op::kFree, .region = 1, .kind = DataKind::kFilter,
       .elems = 8},
      {.op = Command::Op::kFree, .region = 2, .kind = DataKind::kOfmap,
       .elems = 8},
  };
  program.layers.push_back(std::move(layer));
  expect_only(analyze_races(program).report, Code::kRacePhaseAlias);
}

TEST(RaceMutation, R006DependenceCycle) {
  DepGraph graph = DepGraph::build(base_program(/*prefetch=*/false));
  graph.add_edge(5, 3, DepEdgeKind::kWait);  // compute before its own load
  const RaceReport result = analyze_races(graph);
  EXPECT_TRUE(result.cyclic);
  expect_only(result.report, Code::kRaceGraphCycle);
}

TEST(RaceMutation, R008BarrierDrainsNothing) {
  auto program = base_program(/*prefetch=*/false);
  commands(program).insert(commands(program).begin() + 8,
                           Command{.op = Command::Op::kBarrier});
  const RaceReport result = analyze_races(program);
  expect_only(result.report, Code::kRaceRedundantBarrier);
  EXPECT_TRUE(result.ok()) << "R008 is an advisory, not an error";
  EXPECT_FALSE(result.clean());
  // Advisory severity: never flips an exit code, even under --strict —
  // the optimizer's barrier-elision pass is the fix, not a CI failure.
  EXPECT_EQ(result.report.warning_count(), 0u);
  EXPECT_EQ(result.report.advisory_count(), 1u);
  EXPECT_EQ(validate::strict_exit_code(result.report, /*strict=*/false), 0);
  EXPECT_EQ(validate::strict_exit_code(result.report, /*strict=*/true), 0);
}

/// R007 lives in certify_reorder; exercise it on a real lowering so the
/// ids are the stable ones lower() assigns.
struct Lowered {
  model::Network net = model::zoo::mobilenet();
  core::ExecutionPlan plan;
  Program program;
  Lowered()
      : plan(core::MemoryManager(arch::paper_spec(util::kib(256)))
                 .plan(net, core::Objective::kAccesses)),
        program(codegen::lower(plan, net)) {}
};

TEST(RaceMutation, R007CertifyAcceptsIdentity) {
  const Lowered fixture;
  const CertifyResult result =
      certify_reorder(fixture.program, fixture.program);
  EXPECT_TRUE(result.ok) << result.report.summary();
  EXPECT_EQ(result.violations, 0u);
}

TEST(RaceMutation, R007CertifyRejectsLoadPastCompute) {
  const Lowered fixture;
  Program candidate = fixture.program;
  // Move the first load of some layer after that layer's first compute:
  // the compute now precedes the refill it depends on.
  auto& cmds = candidate.layers[0].commands;
  std::size_t load = 0;
  std::size_t compute = 0;
  for (std::size_t i = 0; i < cmds.size(); ++i) {
    if (cmds[i].op == Command::Op::kLoad && load == 0) {
      load = i;
    }
    if (cmds[i].op == Command::Op::kCompute) {
      compute = i;
      break;
    }
  }
  ASSERT_LT(load, compute);
  Command moved = cmds[load];
  cmds.erase(cmds.begin() + static_cast<std::ptrdiff_t>(load));
  cmds.insert(cmds.begin() + static_cast<std::ptrdiff_t>(compute), moved);
  const CertifyResult result = certify_reorder(fixture.program, candidate);
  EXPECT_FALSE(result.ok);
  EXPECT_GE(result.violations, 1u);
  EXPECT_GE(result.report.count(Code::kRaceReorderViolation), 1u)
      << result.report.summary();
}

TEST(RaceMutation, R007CertifyRejectsUntaggedStream) {
  const Program program = base_program(/*prefetch=*/false);  // ids all zero
  const CertifyResult result = certify_reorder(program, program);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.report.count(Code::kRaceReorderViolation), 1u)
      << result.report.summary();
}

TEST(RaceMutation, R007CertifyRejectsAlteredCommand) {
  const Lowered fixture;
  Program candidate = fixture.program;
  candidate.layers[0].commands[0].elems += 1;
  const CertifyResult result = certify_reorder(fixture.program, candidate);
  EXPECT_FALSE(result.ok);
  EXPECT_GE(result.report.count(Code::kRaceReorderViolation), 1u);
}

}  // namespace
}  // namespace rainbow::analysis
