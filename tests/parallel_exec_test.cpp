// Determinism of every parallel simulation path: fanning work across a
// pool must produce bit-identical results for every thread count — the
// property that makes the parallel backends safe defaults.  Kept small
// and fast so the TSan CI job can hammer these paths cheaply.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>

#include "core/manager.hpp"
#include "dse/sweep.hpp"
#include "engine/engine.hpp"
#include "model/layer.hpp"
#include "model/network.hpp"
#include "ref/blocked_kernel.hpp"
#include "model/zoo/zoo.hpp"
#include "ref/network_exec.hpp"
#include "scalesim/simulator.hpp"
#include "scalesim/trace_writer.hpp"
#include "systolic/gemm.hpp"

namespace rainbow {
namespace {

model::Network small_chain() {
  model::Network net("chain");
  net.add(model::make_conv("c1", 12, 12, 3, 3, 3, 8, 1, 1));
  net.add(model::make_depthwise("dw", 12, 12, 8, 3, 3, 1, 1));
  net.add(model::make_pointwise("pw", 12, 12, 8, 6));
  net.add(model::make_conv("c2", 12, 12, 6, 5, 5, 4, 2, 2));
  return net;
}

systolic::Matrix seeded_matrix(int rows, int cols, std::uint64_t seed) {
  systolic::Matrix m(rows, cols);
  std::uint64_t state = seed;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      m.at(r, c) = static_cast<systolic::value_t>((state >> 33) % 11) - 5;
    }
  }
  return m;
}

TEST(ParallelExec, BlockedMatmulThreadCountInvariant) {
  const auto a = seeded_matrix(37, 53, 3);
  const auto b = seeded_matrix(53, 29, 5);
  const auto reference = systolic::blocked_matmul(a, b, 1);
  for (int threads : {2, 3, 4, 0}) {
    EXPECT_EQ(systolic::blocked_matmul(a, b, threads), reference) << threads;
  }
}

TEST(ParallelExec, BlockedForwardThreadCountInvariant) {
  for (const model::Layer& layer :
       {model::make_conv("cv", 11, 11, 5, 3, 3, 9, 1, 1),
        model::make_depthwise("dw", 10, 10, 7, 3, 3, 1, 1)}) {
    const auto ops = ref::random_operands(layer, 21);
    const auto reference = ref::blocked_forward(layer, ops, 1);
    for (int threads : {2, 3, 4, 0}) {
      EXPECT_EQ(ref::blocked_forward(layer, ops, threads), reference)
          << layer << " threads=" << threads;
    }
  }
}

TEST(ParallelExec, SystolicMatmulFoldsParallelizeDeterministically) {
  const auto a = seeded_matrix(23, 9, 7);
  const auto b = seeded_matrix(9, 31, 11);
  const auto serial = systolic::systolic_matmul(a, b, 8, 8, 1);
  for (int threads : {2, 4, 0}) {
    const auto parallel = systolic::systolic_matmul(a, b, 8, 8, threads);
    EXPECT_EQ(parallel.product, serial.product) << threads;
    EXPECT_EQ(parallel.folds, serial.folds) << threads;
    EXPECT_EQ(parallel.cycles, serial.cycles) << threads;
  }
}

TEST(ParallelExec, SimulatorRunThreadCountInvariant) {
  const auto net = small_chain();
  const scalesim::Simulator sim(arch::paper_spec(util::kib(64)),
                                scalesim::BufferPartition{});
  const auto serial = sim.run(net, 1);
  for (int threads : {2, 3, 0}) {
    const auto parallel = sim.run(net, threads);
    EXPECT_EQ(parallel.total_accesses, serial.total_accesses) << threads;
    EXPECT_EQ(parallel.total_cycles, serial.total_cycles) << threads;
    ASSERT_EQ(parallel.layers.size(), serial.layers.size());
    for (std::size_t i = 0; i < serial.layers.size(); ++i) {
      EXPECT_EQ(parallel.layers[i].traffic.total(),
                serial.layers[i].traffic.total());
      EXPECT_EQ(parallel.layers[i].compute_cycles,
                serial.layers[i].compute_cycles);
    }
  }
}

TEST(ParallelExec, TracedRunThreadCountInvariant) {
  const auto net = small_chain();
  const scalesim::Simulator sim(arch::paper_spec(util::kib(64)),
                                scalesim::BufferPartition{});
  const auto serial = sim.run_traced(net, 1);
  EXPECT_NE(serial.trace_checksum, 0u);
  for (int threads : {2, 3, 0}) {
    const auto parallel = sim.run_traced(net, threads);
    EXPECT_EQ(parallel.trace_checksum, serial.trace_checksum) << threads;
    EXPECT_EQ(parallel.sram_read_events, serial.sram_read_events) << threads;
    EXPECT_EQ(parallel.sram_write_events, serial.sram_write_events) << threads;
    EXPECT_EQ(parallel.aggregate.total_accesses,
              serial.aggregate.total_accesses)
        << threads;
    EXPECT_EQ(parallel.aggregate.total_cycles, serial.aggregate.total_cycles)
        << threads;
  }
  // The traced aggregate still equals the plain run exactly.
  const auto plain = sim.run(net, 2);
  EXPECT_EQ(serial.aggregate.total_accesses, plain.total_accesses);
  EXPECT_EQ(serial.aggregate.total_cycles, plain.total_cycles);
}

TEST(ParallelExec, TracedRunFoldChunkInvariantOnZooModel) {
  // The fold-chunk decomposition cuts each layer's group x row_fold x
  // col_fold space into fixed-grain chunks scheduled across all layers;
  // a zoo model is large enough that many chunks actually run (small_chain
  // fits in one chunk and stays inline).  Checksum and event counts must
  // be bit-identical across 1/2/4/8 workers.
  const auto net = model::zoo::mobilenet();
  const scalesim::Simulator sim(arch::paper_spec(util::kib(64)),
                                scalesim::BufferPartition{});
  const auto serial = sim.run_traced(net, 1);
  EXPECT_NE(serial.trace_checksum, 0u);
  EXPECT_EQ(serial.workers_used, 1u);
  for (int threads : {2, 4, 8}) {
    const auto parallel = sim.run_traced(net, threads);
    EXPECT_EQ(parallel.trace_checksum, serial.trace_checksum) << threads;
    EXPECT_EQ(parallel.sram_read_events, serial.sram_read_events) << threads;
    EXPECT_EQ(parallel.sram_write_events, serial.sram_write_events)
        << threads;
    EXPECT_EQ(parallel.aggregate.total_accesses,
              serial.aggregate.total_accesses)
        << threads;
    EXPECT_EQ(parallel.aggregate.total_cycles, serial.aggregate.total_cycles)
        << threads;
    EXPECT_EQ(parallel.workers_used, static_cast<std::size_t>(threads))
        << threads;
  }
}

TEST(ParallelExec, TraceWriterShardsThreadCountInvariant) {
  // The pipelined writer's shard fan-out must never change the bytes; a
  // multi-fold layer exercises several shards per window.
  const auto layer = model::make_conv("c", 10, 10, 6, 3, 3, 20, 1, 1);
  const auto spec = arch::paper_spec(util::kib(64));
  const auto dir = std::filesystem::temp_directory_path();
  const auto ref_path = dir / "rainbow_parallel_trace_ref.csv";
  (void)scalesim::write_sram_trace(layer, spec, ref_path, {.threads = 1});
  std::ifstream ref_in(ref_path, std::ios::binary);
  const std::string reference((std::istreambuf_iterator<char>(ref_in)), {});
  for (int threads : {2, 4, 8, 0}) {
    const auto path = dir / "rainbow_parallel_trace.csv";
    (void)scalesim::write_sram_trace(layer, spec, path, {.threads = threads});
    std::ifstream in(path, std::ios::binary);
    const std::string bytes((std::istreambuf_iterator<char>(in)), {});
    EXPECT_EQ(bytes, reference) << threads;
    std::filesystem::remove(path);
  }
  std::filesystem::remove(ref_path);
}

TEST(ParallelExec, EnginePlanReplayThreadCountInvariant) {
  const auto net = small_chain();
  const auto spec = arch::paper_spec(util::kib(64));
  const core::MemoryManager manager(spec);
  const auto plan = manager.plan(net, core::Objective::kAccesses);
  const engine::Engine engine(spec);
  const auto serial = engine.execute_plan(plan, net, 1);
  for (int threads : {2, 3, 0}) {
    const auto parallel = engine.execute_plan(plan, net, threads);
    EXPECT_EQ(parallel.total_accesses, serial.total_accesses) << threads;
    EXPECT_EQ(parallel.total_latency_cycles, serial.total_latency_cycles)
        << threads;
    ASSERT_EQ(parallel.layers.size(), serial.layers.size());
    for (std::size_t i = 0; i < serial.layers.size(); ++i) {
      EXPECT_EQ(parallel.layers[i].peak_glb_elems,
                serial.layers[i].peak_glb_elems);
      EXPECT_EQ(parallel.layers[i].tiles, serial.layers[i].tiles);
    }
  }
}

TEST(ParallelExec, NetworkExecutionThreadCountInvariant) {
  const auto net = small_chain();
  const auto input = ref::random_operands(net.layer(0), 5).ifmap;
  const core::MemoryManager manager(arch::paper_spec(util::kib(64)));
  const auto plan = manager.plan(net, core::Objective::kAccesses);
  const auto serial = ref::execute_network(
      net, plan, input, 7, {.backend = ref::ExecBackend::kBlocked});
  for (int threads : {2, 3, 0}) {
    const auto parallel = ref::execute_network(
        net, plan, input, 7,
        {.backend = ref::ExecBackend::kBlocked, .threads = threads});
    EXPECT_EQ(parallel.output, serial.output) << threads;
    ASSERT_EQ(parallel.peaks.size(), serial.peaks.size());
    for (std::size_t i = 0; i < serial.peaks.size(); ++i) {
      EXPECT_EQ(parallel.peaks[i], serial.peaks[i]) << threads;
    }
    EXPECT_EQ(parallel.layer_ms.size(), net.size());
  }
}

TEST(ParallelExec, SweepSimulationModeFillsSimFields) {
  const auto net = small_chain();
  dse::SweepConfig config;
  config.glb_bytes = {util::kib(32), util::kib(64)};
  config.simulate_execution = true;
  config.simulate_threads = 2;
  const auto points = dse::run_sweep(net, config, 2);
  ASSERT_EQ(points.size(), config.point_count());
  for (const auto& p : points) {
    EXPECT_TRUE(p.simulated);
    // The engine replay's traffic agrees with the analytic plan exactly.
    EXPECT_EQ(p.sim_accesses, p.accesses);
    EXPECT_GT(p.sim_latency_cycles, 0.0);
    EXPECT_GT(p.sim_peak_glb_elems, 0u);
  }
  // Without the flag the sim fields stay untouched.
  config.simulate_execution = false;
  for (const auto& p : dse::run_sweep(net, config, 2)) {
    EXPECT_FALSE(p.simulated);
    EXPECT_EQ(p.sim_accesses, 0u);
  }
}

}  // namespace
}  // namespace rainbow
