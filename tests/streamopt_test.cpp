// Unit tests for the translation-validated stream optimizer
// (analysis/streamopt.hpp): the three passes on hand-built streams, the
// O-code stage gates on deliberately illegal rewrites, the zoo
// end-to-end certification (reordering must shrink the critical path and
// never break a single gate), and the advisory severity policy the
// optimizer's R008 elision pass rests on.
#include "analysis/streamopt.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "analysis/race.hpp"
#include "codegen/interpret.hpp"
#include "codegen/lower.hpp"
#include "core/manager.hpp"
#include "model/zoo/zoo.hpp"

namespace rainbow::analysis {
namespace {

using codegen::Command;
using codegen::DataKind;
using codegen::LayerProgram;
using codegen::Program;
using validate::Code;
using validate::Diagnostic;
using validate::Severity;
using validate::ValidationReport;

constexpr Code kAllOptCodes[] = {
    Code::kOptReorderViolation, Code::kOptRaceIntroduced,
    Code::kOptStreamRegression, Code::kOptSemanticsDiverged,
    Code::kOptLatencyRegressed, Code::kOptStructuralViolation};

void expect_only(const ValidationReport& report, Code expected) {
  for (const Code code : kAllOptCodes) {
    if (code == expected) {
      EXPECT_GE(report.count(code), 1u)
          << validate::code_string(code) << "\n" << report.summary();
    } else {
      EXPECT_EQ(report.count(code), 0u)
          << validate::code_string(code) << "\n" << report.summary();
    }
  }
}

/// Minimal clean serial one-layer stream (mirrors race_mutation_test's
/// base fixture).
Program base_program() {
  Program program;
  program.model = "fixture";
  program.spec = arch::paper_spec(util::kib(64));
  LayerProgram layer;
  layer.layer_index = 0;
  layer.layer_name = "l0";
  layer.choice.prefetch = false;
  layer.commands = {
      {.op = Command::Op::kAlloc, .region = 0, .kind = DataKind::kIfmap,
       .elems = 16},
      {.op = Command::Op::kAlloc, .region = 1, .kind = DataKind::kFilter,
       .elems = 8},
      {.op = Command::Op::kAlloc, .region = 2, .kind = DataKind::kOfmap,
       .elems = 8},
      {.op = Command::Op::kLoad, .region = 0, .kind = DataKind::kIfmap,
       .elems = 16},
      {.op = Command::Op::kLoad, .region = 1, .kind = DataKind::kFilter,
       .elems = 8},
      {.op = Command::Op::kCompute, .macs = 100},
      {.op = Command::Op::kStore, .region = 2, .kind = DataKind::kOfmap,
       .elems = 8},
      {.op = Command::Op::kBarrier},
      {.op = Command::Op::kFree, .region = 0, .kind = DataKind::kIfmap,
       .elems = 16},
      {.op = Command::Op::kFree, .region = 1, .kind = DataKind::kFilter,
       .elems = 8},
      {.op = Command::Op::kFree, .region = 2, .kind = DataKind::kOfmap,
       .elems = 8},
  };
  program.layers.push_back(std::move(layer));
  return program;
}

std::vector<Command>& commands(Program& program, std::size_t layer = 0) {
  return program.layers[layer].commands;
}

TEST(StreamOpt, IdentityStreamCertifiesUnchanged) {
  const Program program = base_program();
  const OptimizeResult result = optimize_program(program);
  EXPECT_TRUE(result.certified) << result.report.summary();
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.layers_reordered, 0u);
  EXPECT_EQ(result.barriers_elided, 0u);
  EXPECT_EQ(result.transfers_coalesced, 0u);
  ASSERT_EQ(result.program.layers.size(), 1u);
  EXPECT_EQ(result.program.layers[0].commands,
            program.layers[0].commands);
  EXPECT_DOUBLE_EQ(result.optimized_cycles, result.original_cycles);
}

TEST(StreamOpt, ElidesRedundantBarrierKeepsTheCloser) {
  Program program = base_program();
  // A barrier straight after the allocs drains nothing: the R008 shape.
  commands(program).insert(commands(program).begin() + 3,
                           Command{.op = Command::Op::kBarrier});
  const OptimizeResult result = optimize_program(program);
  EXPECT_TRUE(result.certified) << result.report.summary();
  EXPECT_EQ(result.barriers_elided, 1u);
  // Exactly the redundant barrier is gone; the draining closer stays.
  EXPECT_EQ(result.program.layers[0].commands,
            base_program().layers[0].commands);
  // The emitted stream no longer carries the R008 advisory.
  EXPECT_EQ(analyze_races(result.program).report.count(
                Code::kRaceRedundantBarrier),
            0u);
}

TEST(StreamOpt, KeepsTrailingBarrierEvenWhenRedundant) {
  Program program = base_program();
  // A second barrier after the draining one is redundant, but it is the
  // layer's closing barrier; the optimizer must not strip the layer's
  // terminal sync (serial handoff and S008/S009 depend on it).
  commands(program).push_back(Command{.op = Command::Op::kBarrier});
  const OptimizeResult result = optimize_program(program);
  EXPECT_TRUE(result.certified) << result.report.summary();
  // The mid-stream draining barrier is now "redundant-looking" only for
  // the inserted one; the original barrier drains 4 asyncs.  Nothing but
  // the trailing barrier is redundant, and that one is kept.
  EXPECT_EQ(result.barriers_elided, 0u);
  EXPECT_EQ(result.program.layers[0].commands.back().op,
            Command::Op::kBarrier);
}

TEST(StreamOpt, ElisionGateRejectsDrainingBarrierRemoval) {
  const Program original = base_program();
  Program candidate = original;
  // Remove the real barrier: it drains 4 async commands.
  commands(candidate).erase(commands(candidate).begin() + 7);
  const ValidationReport gate = check_elision_stage(original, candidate);
  EXPECT_FALSE(gate.ok());
  expect_only(gate, Code::kOptStructuralViolation);
}

TEST(StreamOpt, ElisionGateRejectsNonBarrierRemoval) {
  const Program original = base_program();
  Program candidate = original;
  commands(candidate).erase(commands(candidate).begin() + 5);  // compute
  const ValidationReport gate = check_elision_stage(original, candidate);
  EXPECT_FALSE(gate.ok());
  expect_only(gate, Code::kOptStructuralViolation);
}

TEST(StreamOpt, ElisionGateRejectsInsertedCommand) {
  const Program original = base_program();
  Program candidate = original;
  commands(candidate).push_back(Command{.op = Command::Op::kBarrier});
  const ValidationReport gate = check_elision_stage(original, candidate);
  EXPECT_FALSE(gate.ok());
  expect_only(gate, Code::kOptStructuralViolation);
}

TEST(StreamOpt, CoalescesAdjacentSameRegionChunks) {
  Program program = base_program();
  // Split the ifmap load into two adjacent 8-element chunks.
  commands(program)[3].elems = 8;
  commands(program).insert(
      commands(program).begin() + 4,
      Command{.op = Command::Op::kLoad, .region = 0, .kind = DataKind::kIfmap,
              .elems = 8});
  const OptimizeResult result = optimize_program(program);
  EXPECT_TRUE(result.certified) << result.report.summary();
  EXPECT_EQ(result.transfers_coalesced, 1u);
  EXPECT_EQ(result.program.layers[0].commands,
            base_program().layers[0].commands);
  // Differential sanity: merged stream interprets to identical traffic.
  const codegen::Interpreter interp(program.spec);
  const codegen::ProgramRun before = interp.run(program);
  const codegen::ProgramRun after = interp.run(result.program);
  EXPECT_EQ(before.total_accesses, after.total_accesses);
  EXPECT_EQ(before.peak_glb_elems, after.peak_glb_elems);
}

TEST(StreamOpt, CoalesceGateRejectsSizeMismatch) {
  const Program original = base_program();
  Program candidate = original;
  // "Merge" that invents elements: 16 -> 24 with no matching chunks.
  commands(candidate)[3].elems = 24;
  const ValidationReport gate = check_coalesce_stage(original, candidate);
  EXPECT_FALSE(gate.ok());
  expect_only(gate, Code::kOptStructuralViolation);
}

TEST(StreamOpt, CoalesceGateRejectsOverflowingFilterMerge) {
  // Two filter loads of a full 8-element region: a merge would be 16 into
  // a region of 8 — legal-looking chunk arithmetic, illegal occupancy.
  Program original = base_program();
  commands(original).insert(
      commands(original).begin() + 5,
      Command{.op = Command::Op::kLoad, .region = 1, .kind = DataKind::kFilter,
              .elems = 8});
  Program candidate = original;
  commands(candidate)[4].elems = 16;
  commands(candidate).erase(commands(candidate).begin() + 5);
  const ValidationReport gate = check_coalesce_stage(original, candidate);
  EXPECT_FALSE(gate.ok());
  expect_only(gate, Code::kOptStructuralViolation);
}

TEST(StreamOpt, CoalesceGateAcceptsTheRealMerge) {
  Program original = base_program();
  commands(original)[3].elems = 8;
  commands(original).insert(
      commands(original).begin() + 4,
      Command{.op = Command::Op::kLoad, .region = 0, .kind = DataKind::kIfmap,
              .elems = 8});
  const Program candidate = base_program();
  EXPECT_TRUE(check_coalesce_stage(original, candidate).ok());
}

/// Real lowering, forced p2 + prefetch: every layer is the tagged
/// double-buffered shape the reordering pass targets.
struct Lowered {
  model::Network net = model::zoo::mobilenet();
  core::ExecutionPlan plan;
  Program program;
  Lowered()
      : plan(core::MemoryManager(arch::paper_spec(util::kib(64)))
                 .plan_with_policy(net, core::Policy::kFilterReuse,
                                   /*prefetch=*/true,
                                   core::Objective::kAccesses)),
        program(codegen::lower(plan, net)) {}
};

/// The lowering and its certified optimization are deterministic and
/// expensive (a full mobilenet stream); build them once, assert many.
const Lowered& lowered() {
  static const Lowered fixture;
  return fixture;
}

const OptimizeResult& optimized() {
  static const OptimizeResult result = optimize_program(
      lowered().program, lowered().plan, lowered().net);
  return result;
}

TEST(StreamOpt, ZooReorderCertifiesAndShrinksCriticalPath) {
  const Lowered& fixture = lowered();
  const OptimizeResult& result = optimized();
  EXPECT_TRUE(result.certified) << result.report.summary();
  EXPECT_TRUE(result.ok());
  EXPECT_GE(result.layers_reordered, 1u);
  EXPECT_GT(result.commands_moved, 0u);
  EXPECT_LT(result.optimized_cycles, result.original_cycles);
  EXPECT_LT(result.optimized_stall_cycles, result.original_stall_cycles);
  // Reordered layers carry the scheduled flag, and the emitted stream is
  // race-free under the scheduled dependence model.
  std::size_t scheduled = 0;
  for (const LayerProgram& layer : result.program.layers) {
    scheduled += layer.scheduled ? 1u : 0u;
  }
  EXPECT_EQ(scheduled, result.layers_reordered);
  const RaceReport races = analyze_races(result.program);
  EXPECT_TRUE(races.ok()) << races.report.summary();
  // Per-layer accounting: reverted layers keep their cycles, kept layers
  // improve, and the totals are consistent.
  ASSERT_EQ(result.layers.size(), result.program.layers.size());
  for (const LayerOptStats& stats : result.layers) {
    if (stats.reordered) {
      EXPECT_LT(stats.optimized_cycles, stats.original_cycles)
          << stats.layer_name;
    }
  }
}

TEST(StreamOpt, ZooReorderPreservesInterpretedSemantics) {
  const Lowered& fixture = lowered();
  const OptimizeResult& result = optimized();
  ASSERT_TRUE(result.certified) << result.report.summary();
  const codegen::Interpreter interp(fixture.program.spec);
  const codegen::ProgramRun before = interp.run(fixture.program);
  const codegen::ProgramRun after = interp.run(result.program);
  ASSERT_EQ(before.layers.size(), after.layers.size());
  for (std::size_t l = 0; l < before.layers.size(); ++l) {
    EXPECT_TRUE(before.layers[l].traffic == after.layers[l].traffic) << l;
    EXPECT_EQ(before.layers[l].macs, after.layers[l].macs) << l;
    EXPECT_EQ(before.layers[l].peak_glb_elems, after.layers[l].peak_glb_elems)
        << l;
  }
  EXPECT_EQ(before.total_accesses, after.total_accesses);
  EXPECT_EQ(before.peak_glb_elems, after.peak_glb_elems);
}

TEST(StreamOpt, ReorderGateRejectsIllegalHoist) {
  const Lowered& fixture = lowered();
  Program candidate = fixture.program;
  // Find a layer with a compute after a load and hoist the compute above
  // it: inverts the RAW load -> compute dependence.
  bool mutated = false;
  for (LayerProgram& layer : candidate.layers) {
    for (std::size_t i = 1; i + 1 < layer.commands.size() && !mutated; ++i) {
      if (layer.commands[i].op == Command::Op::kCompute &&
          layer.commands[i - 1].op == Command::Op::kLoad &&
          layer.commands[i - 1].tile == layer.commands[i].tile) {
        std::swap(layer.commands[i - 1], layer.commands[i]);
        mutated = true;
      }
    }
    if (mutated) {
      break;
    }
  }
  ASSERT_TRUE(mutated);
  const ValidationReport gate =
      check_reorder_stage(fixture.program, candidate);
  EXPECT_FALSE(gate.ok());
  expect_only(gate, Code::kOptReorderViolation);
}

TEST(StreamOpt, ZooLoweringsCarryNoRedundantBarriers) {
  // The lowering emits exactly one draining barrier per layer, so zoo
  // R008 counts are zero before the optimizer ever runs — and stay zero
  // on the optimized stream (the elision pass would remove any that
  // appeared).
  const Lowered& fixture = lowered();
  EXPECT_EQ(analyze_races(fixture.program)
                .report.count(Code::kRaceRedundantBarrier),
            0u);
  const OptimizeResult& result = optimized();
  ASSERT_TRUE(result.certified);
  EXPECT_EQ(result.barriers_elided, 0u);
  EXPECT_EQ(analyze_races(result.program)
                .report.count(Code::kRaceRedundantBarrier),
            0u);
}

TEST(StreamOpt, CheckSemanticsFlagsCorruptedCandidate) {
  const Lowered& fixture = lowered();
  Program candidate = fixture.program;
  // Silently shrink one transfer: conservation breaks, the differential
  // interpreter (or the S-code analyzer) must catch it.
  for (LayerProgram& layer : candidate.layers) {
    for (Command& cmd : layer.commands) {
      if (cmd.op == Command::Op::kLoad && cmd.elems > 1) {
        cmd.elems -= 1;
        goto corrupted;
      }
    }
  }
corrupted:
  const ValidationReport report = check_semantics(
      fixture.program, candidate, &fixture.plan, &fixture.net);
  EXPECT_FALSE(report.ok());
}

TEST(StreamOpt, AdvisoriesNeverFlipExitCodes) {
  ValidationReport advisory_only;
  advisory_only.add({.code = Code::kRaceRedundantBarrier,
                     .severity = Severity::kAdvisory});
  EXPECT_EQ(advisory_only.error_count(), 0u);
  EXPECT_EQ(advisory_only.warning_count(), 0u);
  EXPECT_EQ(advisory_only.advisory_count(), 1u);
  EXPECT_EQ(validate::strict_exit_code(advisory_only, false), 0);
  EXPECT_EQ(validate::strict_exit_code(advisory_only, true), 0);

  ValidationReport with_warning = advisory_only;
  with_warning.add({.code = Code::kStreamUnterminatedLayer,
                    .severity = Severity::kWarning});
  EXPECT_EQ(with_warning.warning_count(), 1u);
  EXPECT_EQ(validate::strict_exit_code(with_warning, false), 0);
  EXPECT_EQ(validate::strict_exit_code(with_warning, true), 1);

  ValidationReport with_error = with_warning;
  with_error.add({.code = Code::kOptStructuralViolation,
                  .severity = Severity::kError});
  EXPECT_EQ(validate::strict_exit_code(with_error, false), 1);
  EXPECT_EQ(validate::strict_exit_code(with_error, true), 1);
}

TEST(StreamOpt, PassesCanBeDisabledIndependently) {
  Program program = base_program();
  commands(program).insert(commands(program).begin() + 3,
                           Command{.op = Command::Op::kBarrier});
  StreamOptOptions options;
  options.elide_barriers = false;
  const OptimizeResult result = optimize_program(program, options);
  EXPECT_TRUE(result.certified) << result.report.summary();
  EXPECT_EQ(result.barriers_elided, 0u);
  EXPECT_EQ(result.program.layers[0].commands, program.layers[0].commands);
}

}  // namespace
}  // namespace rainbow::analysis
