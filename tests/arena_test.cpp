// util::Arena / ArenaBuffer / ArenaPool: the bump allocator backing
// rainbowd's per-request state (docs/serving.md).
#include "util/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>

namespace rainbow::util {
namespace {

TEST(Arena, AllocationsAreDisjointAndAligned) {
  Arena arena(/*initial_block_bytes=*/128);
  char* a = arena.allocate(10);
  char* b = arena.allocate(10);
  EXPECT_NE(a, b);
  std::memset(a, 0xaa, 10);
  std::memset(b, 0xbb, 10);
  EXPECT_EQ(static_cast<unsigned char>(a[9]), 0xaa);  // b did not overlap a
  char* aligned = arena.allocate(8, 64);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(aligned) % 64, 0u);
  EXPECT_EQ(arena.used(), arena.high_water());
}

TEST(Arena, GrowsBeyondInitialBlockAndCoalescesOnReset) {
  Arena arena(/*initial_block_bytes=*/64);
  for (int i = 0; i < 32; ++i) {
    char* p = arena.allocate(40);
    std::memset(p, i, 40);
  }
  EXPECT_GT(arena.block_count(), 1u);
  const std::size_t high_water = arena.high_water();
  arena.reset();
  // Reset coalesces the chain into one block big enough for the whole
  // previous load, so steady state never grows again.
  EXPECT_EQ(arena.block_count(), 1u);
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_GE(arena.reserved(), high_water);
  for (int i = 0; i < 32; ++i) {
    (void)arena.allocate(40);
  }
  EXPECT_EQ(arena.block_count(), 1u);
}

TEST(Arena, OversizedRequestGetsDedicatedBlock) {
  Arena arena(/*initial_block_bytes=*/64);
  char* big = arena.allocate(1 << 20);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0x5a, 1 << 20);
  EXPECT_GE(arena.reserved(), static_cast<std::size_t>(1 << 20));
}

TEST(Arena, TryExtendOnlyGrowsTheTailAllocation) {
  Arena arena(/*initial_block_bytes=*/256);
  char* first = arena.allocate(16);
  char* tail = arena.allocate(16);
  EXPECT_FALSE(arena.try_extend(first, 16, 32));  // not the last allocation
  EXPECT_TRUE(arena.try_extend(tail, 16, 32));    // in place, block has room
  char* next = arena.allocate(8);
  EXPECT_EQ(next, tail + 32);  // the extension actually claimed the bytes
}

TEST(ArenaBuffer, AppendsContiguouslyAcrossGrowth) {
  Arena arena(/*initial_block_bytes=*/64);
  ArenaBuffer buffer(arena);
  std::string expected;
  for (int i = 0; i < 200; ++i) {
    const std::string chunk = "chunk-" + std::to_string(i) + ";";
    buffer.append(chunk);
    expected += chunk;
  }
  buffer.push_back('!');
  expected += '!';
  EXPECT_EQ(buffer.view(), expected);
}

TEST(ArenaBuffer, ReservePrefixIsPatchableAfterAppends) {
  Arena arena;
  ArenaBuffer buffer(arena);
  char* header = buffer.reserve_prefix(4);
  buffer.append(std::string(1000, 'x'));
  // The buffer may have relocated; re-resolve through data() like the
  // frame encoder does.
  header = buffer.data();
  std::memcpy(header, "HDR!", 4);
  EXPECT_EQ(buffer.view().substr(0, 4), "HDR!");
  EXPECT_EQ(buffer.size(), 1004u);
}

TEST(ArenaPool, RecyclesResetArenasUpToTheBound) {
  ArenaPool pool(/*max_pooled=*/2, /*initial_block_bytes=*/64);
  auto a = pool.acquire();
  auto b = pool.acquire();
  auto c = pool.acquire();
  EXPECT_EQ(pool.created(), 3u);
  (void)a->allocate(100);
  pool.release(std::move(a));
  pool.release(std::move(b));
  pool.release(std::move(c));  // over the bound: dropped, not pooled
  EXPECT_EQ(pool.pooled(), 2u);
  auto recycled = pool.acquire();
  EXPECT_EQ(recycled->used(), 0u);  // came back reset
  EXPECT_EQ(pool.created(), 3u);    // no new arena was built
}

}  // namespace
}  // namespace rainbow::util
