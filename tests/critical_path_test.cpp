// Zoo-wide cross-check of the dependence graph against the engine: every
// model x {64, 256} kB x het/het+inter x prefetch on/off must (a) lower to
// a race-free stream and (b) yield a critical path that reproduces
// engine::schedule_latency layer by layer (S016 on divergence).  This is
// the end-to-end evidence that the graph models the same machine the
// engine executes.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analysis/race.hpp"
#include "codegen/lower.hpp"
#include "core/eval_cache.hpp"
#include "core/manager.hpp"
#include "model/zoo/zoo.hpp"

namespace rainbow::analysis {
namespace {

struct Combo {
  count_t glb_kib;
  bool interlayer;
  bool prefetch;
};

std::string describe(const model::Network& net, const Combo& combo) {
  return net.name() + " @" + std::to_string(combo.glb_kib) + "KiB" +
         (combo.interlayer ? " +inter" : "") +
         (combo.prefetch ? " +prefetch" : " -prefetch");
}

void check_combo(const model::Network& net, const Combo& combo,
                 const std::shared_ptr<core::EvalCache>& cache) {
  core::ManagerOptions options;
  options.interlayer_reuse = combo.interlayer;
  options.analyzer.allow_prefetch = combo.prefetch;
  options.analyzer.eval_cache = cache;
  const core::MemoryManager manager(
      arch::paper_spec(util::kib(combo.glb_kib)), options);
  const core::ExecutionPlan plan = manager.plan(net, core::Objective::kAccesses);
  ASSERT_TRUE(plan.feasible()) << describe(net, combo);
  const codegen::Program program = codegen::lower(plan, net);

  const DepGraph graph = DepGraph::build(program);
  const RaceReport races = analyze_races(graph);
  EXPECT_TRUE(races.clean())
      << describe(net, combo) << "\n" << races.report.summary();

  const CriticalPathCheck check = check_critical_path(graph, program, plan, net);
  EXPECT_TRUE(check.match())
      << describe(net, combo) << "\n" << check.report.summary();
  ASSERT_EQ(check.path.layer_cycles.size(), check.engine_layer_cycles.size())
      << describe(net, combo);
  // match() already compared per layer; sanity-check the totals agree too.
  EXPECT_NEAR(check.path.total_cycles, check.engine_total_cycles,
              1e-6 * check.engine_total_cycles)
      << describe(net, combo);
}

TEST(CriticalPathZoo, GraphReproducesEngineLatencyAndIsRaceFree) {
  const std::vector<Combo> combos = {
      {64, false, false}, {64, false, true},  {64, true, false},
      {64, true, true},   {256, false, false}, {256, false, true},
      {256, true, false}, {256, true, true},
  };
  // One shared cache across the sweep: keys cover spec and options, and
  // the ±inter combos re-evaluate the same (layer, policy) points.
  const auto cache = std::make_shared<core::EvalCache>();
  for (const model::Network& net : model::zoo::all_models()) {
    for (const Combo& combo : combos) {
      check_combo(net, combo, cache);
    }
  }
}

}  // namespace
}  // namespace rainbow::analysis
