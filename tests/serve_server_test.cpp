// The rainbowd transport, end to end over real sockets: frame round-trips,
// hostile peers (garbage magic, oversized frames, half-closed
// connections), concurrent clients, and graceful shutdown.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

namespace rainbow::serve {
namespace {

struct TestDaemon {
  explicit TestDaemon(ServerConfig config = {}, bool preload = true) {
    service = std::make_unique<PlanningService>(
        ServiceOptions{/*preload_zoo=*/preload});
    if (config.unix_path.empty() && config.tcp_port < 0) {
      config.tcp_port = 0;  // default: ephemeral loopback TCP
    }
    config.threads = 4;
    server = std::make_unique<Server>(*service, config);
    server->start();
  }
  ~TestDaemon() {
    if (server) {
      server->stop();
    }
  }
  [[nodiscard]] Client connect() const {
    return server->port() >= 0
               ? Client::connect_tcp(server->port())
               : Client::connect_unix(server->unix_path());
  }
  std::unique_ptr<PlanningService> service;
  std::unique_ptr<Server> server;
};

int raw_connect(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

Request plan_request(const std::string& model) {
  Request request;
  request.verb = "plan";
  request.headers["model"] = model;
  return request;
}

TEST(Server, PingOverTcp) {
  TestDaemon daemon({}, /*preload=*/false);
  Client client = daemon.connect();
  Request ping;
  ping.verb = "ping";
  const Response pong = client.call_ok(ping);
  EXPECT_EQ(pong.get("server"), "rainbowd");
}

TEST(Server, PingOverUnixSocket) {
  ServerConfig config;
  config.unix_path = testing::TempDir() + "serve_server_test.sock";
  TestDaemon daemon(config, /*preload=*/false);
  Client client = Client::connect_unix(config.unix_path);
  Request ping;
  ping.verb = "ping";
  EXPECT_TRUE(client.call_ok(ping).ok);
}

TEST(Server, PlanAndMultipleRequestsPerConnection) {
  TestDaemon daemon;
  Client client = daemon.connect();
  const Response first = client.call_ok(plan_request("resnet18"));
  EXPECT_FALSE(first.body.empty());
  // Same connection, more requests: warm re-plan is byte-identical, and
  // an error response leaves the connection usable.
  const Response second = client.call_ok(plan_request("resnet18"));
  EXPECT_EQ(second.body, first.body);
  const Response bad = client.call(plan_request("nosuchmodel"));
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(client.call_ok(plan_request("resnet18")).body, first.body);
}

TEST(Server, GarbageMagicClosesOnlyThatConnection) {
  TestDaemon daemon({}, /*preload=*/false);
  const int fd = raw_connect(daemon.server->port());
  const char garbage[] = "GET / HTTP/1.1\r\n\r\n";
  ASSERT_EQ(::send(fd, garbage, sizeof(garbage) - 1, 0),
            static_cast<ssize_t>(sizeof(garbage) - 1));
  // The daemon drops the connection without replying: clean FIN, or RST
  // when our unread extra bytes were still queued at close time.
  char byte = 0;
  EXPECT_LE(::recv(fd, &byte, 1, 0), 0);
  ::close(fd);
  // ...and keeps serving everyone else.
  Client client = daemon.connect();
  Request ping;
  ping.verb = "ping";
  EXPECT_TRUE(client.call_ok(ping).ok);
}

TEST(Server, OversizedFrameRejected) {
  ServerConfig config;
  config.max_frame_bytes = 1024;
  TestDaemon daemon(config, /*preload=*/false);
  const int fd = raw_connect(daemon.server->port());
  // A valid header announcing 2 MB: over the configured bound, so the
  // server must drop the connection instead of allocating.
  char header[8];
  std::memcpy(header, kMagic, 4);
  const std::uint32_t length = 2u * 1024 * 1024;
  std::memcpy(header + 4, &length, 4);
  ASSERT_EQ(::send(fd, header, sizeof(header), 0),
            static_cast<ssize_t>(sizeof(header)));
  char byte = 0;
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);
  ::close(fd);
}

TEST(Server, TruncatedFrameDropped) {
  TestDaemon daemon({}, /*preload=*/false);
  {
    const int fd = raw_connect(daemon.server->port());
    // Announce 100 payload bytes, deliver 3, then half-close.
    char header[8];
    std::memcpy(header, kMagic, 4);
    const std::uint32_t length = 100;
    std::memcpy(header + 4, &length, 4);
    ASSERT_EQ(::send(fd, header, sizeof(header), 0),
              static_cast<ssize_t>(sizeof(header)));
    ASSERT_EQ(::send(fd, "abc", 3, 0), 3);
    ::shutdown(fd, SHUT_WR);
    char byte = 0;
    EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);
    ::close(fd);
  }
  Client client = daemon.connect();
  Request ping;
  ping.verb = "ping";
  EXPECT_TRUE(client.call_ok(ping).ok);
}

TEST(Server, ConcurrentClientsGetIdenticalPlans) {
  TestDaemon daemon;
  // One reference plan, then 8 clients x 4 requests hammering the same
  // and different models concurrently.
  Client reference_client = daemon.connect();
  const std::string reference =
      reference_client.call_ok(plan_request("mobilenet")).body;
  ASSERT_FALSE(reference.empty());

  constexpr int kClients = 8;
  std::vector<std::thread> threads;
  std::vector<std::string> failures(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      try {
        Client client = daemon.connect();
        for (int k = 0; k < 4; ++k) {
          const Response response =
              client.call_ok(plan_request("mobilenet"));
          if (response.body != reference) {
            failures[c] = "plan bytes diverged";
            return;
          }
        }
      } catch (const std::exception& e) {
        failures[c] = e.what();
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (const std::string& failure : failures) {
    EXPECT_EQ(failure, "");
  }
}

TEST(Server, ShutdownVerbDrainsAndStops) {
  TestDaemon daemon;
  Client client = daemon.connect();
  ASSERT_FALSE(client.call_ok(plan_request("resnet18")).body.empty());
  Request shutdown_request;
  shutdown_request.verb = "shutdown";
  const Response ack = client.call_ok(shutdown_request);
  EXPECT_EQ(ack.get("stopping"), "1");
  const std::uint64_t served = daemon.server->wait();
  EXPECT_GE(served, 2u);  // the plan + the shutdown ack
  daemon.server.reset();
  daemon.service.reset();
}

TEST(Server, RequestStopUnblocksIdleConnections) {
  TestDaemon daemon({}, /*preload=*/false);
  // An idle client parked in recv() must not hang shutdown.
  Client idle = daemon.connect();
  Request ping;
  ping.verb = "ping";
  ASSERT_TRUE(idle.call_ok(ping).ok);
  daemon.server->request_stop();
  const std::uint64_t served = daemon.server->stop();
  EXPECT_EQ(served, 1u);
}

TEST(Server, ServesManySequentialConnections) {
  TestDaemon daemon({}, /*preload=*/false);
  Request ping;
  ping.verb = "ping";
  // Churn through short-lived connections: the acceptor must reap
  // finished connection threads rather than accumulate them.
  for (int i = 0; i < 32; ++i) {
    Client client = daemon.connect();
    ASSERT_TRUE(client.call_ok(ping).ok);
  }
  EXPECT_EQ(daemon.server->stop(), 32u);
}

}  // namespace
}  // namespace rainbow::serve
