// The rainbowd transport, end to end over real sockets: frame round-trips,
// hostile peers (garbage magic, oversized frames, half-closed
// connections), concurrent clients, and graceful shutdown.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

namespace rainbow::serve {
namespace {

struct TestDaemon {
  explicit TestDaemon(ServerConfig config = {}, bool preload = true) {
    service = std::make_unique<PlanningService>(
        ServiceOptions{/*preload_zoo=*/preload});
    if (config.unix_path.empty() && config.tcp_port < 0) {
      config.tcp_port = 0;  // default: ephemeral loopback TCP
    }
    config.threads = 4;
    server = std::make_unique<Server>(*service, config);
    server->start();
  }
  ~TestDaemon() {
    if (server) {
      server->stop();
    }
  }
  [[nodiscard]] Client connect() const {
    return server->port() >= 0
               ? Client::connect_tcp(server->port())
               : Client::connect_unix(server->unix_path());
  }
  std::unique_ptr<PlanningService> service;
  std::unique_ptr<Server> server;
};

int raw_connect(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

Request plan_request(const std::string& model) {
  Request request;
  request.verb = "plan";
  request.headers["model"] = model;
  return request;
}

TEST(Server, PingOverTcp) {
  TestDaemon daemon({}, /*preload=*/false);
  Client client = daemon.connect();
  Request ping;
  ping.verb = "ping";
  const Response pong = client.call_ok(ping);
  EXPECT_EQ(pong.get("server"), "rainbowd");
}

TEST(Server, PingOverUnixSocket) {
  ServerConfig config;
  config.unix_path = testing::TempDir() + "serve_server_test.sock";
  TestDaemon daemon(config, /*preload=*/false);
  Client client = Client::connect_unix(config.unix_path);
  Request ping;
  ping.verb = "ping";
  EXPECT_TRUE(client.call_ok(ping).ok);
}

TEST(Server, PlanAndMultipleRequestsPerConnection) {
  TestDaemon daemon;
  Client client = daemon.connect();
  const Response first = client.call_ok(plan_request("resnet18"));
  EXPECT_FALSE(first.body.empty());
  // Same connection, more requests: warm re-plan is byte-identical, and
  // an error response leaves the connection usable.
  const Response second = client.call_ok(plan_request("resnet18"));
  EXPECT_EQ(second.body, first.body);
  const Response bad = client.call(plan_request("nosuchmodel"));
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(client.call_ok(plan_request("resnet18")).body, first.body);
}

TEST(Server, GarbageMagicClosesOnlyThatConnection) {
  TestDaemon daemon({}, /*preload=*/false);
  const int fd = raw_connect(daemon.server->port());
  const char garbage[] = "GET / HTTP/1.1\r\n\r\n";
  ASSERT_EQ(::send(fd, garbage, sizeof(garbage) - 1, 0),
            static_cast<ssize_t>(sizeof(garbage) - 1));
  // The daemon drops the connection without replying: clean FIN, or RST
  // when our unread extra bytes were still queued at close time.
  char byte = 0;
  EXPECT_LE(::recv(fd, &byte, 1, 0), 0);
  ::close(fd);
  // ...and keeps serving everyone else.
  Client client = daemon.connect();
  Request ping;
  ping.verb = "ping";
  EXPECT_TRUE(client.call_ok(ping).ok);
}

TEST(Server, OversizedFrameRejected) {
  ServerConfig config;
  config.max_frame_bytes = 1024;
  TestDaemon daemon(config, /*preload=*/false);
  const int fd = raw_connect(daemon.server->port());
  // A valid header announcing 2 MB: over the configured bound, so the
  // server must drop the connection instead of allocating.
  char header[8];
  std::memcpy(header, kMagic, 4);
  const std::uint32_t length = 2u * 1024 * 1024;
  std::memcpy(header + 4, &length, 4);
  ASSERT_EQ(::send(fd, header, sizeof(header), 0),
            static_cast<ssize_t>(sizeof(header)));
  char byte = 0;
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);
  ::close(fd);
}

TEST(Server, TruncatedFrameDropped) {
  TestDaemon daemon({}, /*preload=*/false);
  {
    const int fd = raw_connect(daemon.server->port());
    // Announce 100 payload bytes, deliver 3, then half-close.
    char header[8];
    std::memcpy(header, kMagic, 4);
    const std::uint32_t length = 100;
    std::memcpy(header + 4, &length, 4);
    ASSERT_EQ(::send(fd, header, sizeof(header), 0),
              static_cast<ssize_t>(sizeof(header)));
    ASSERT_EQ(::send(fd, "abc", 3, 0), 3);
    ::shutdown(fd, SHUT_WR);
    char byte = 0;
    EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);
    ::close(fd);
  }
  Client client = daemon.connect();
  Request ping;
  ping.verb = "ping";
  EXPECT_TRUE(client.call_ok(ping).ok);
}

TEST(Server, ConcurrentClientsGetIdenticalPlans) {
  TestDaemon daemon;
  // One reference plan, then 8 clients x 4 requests hammering the same
  // and different models concurrently.
  Client reference_client = daemon.connect();
  const std::string reference =
      reference_client.call_ok(plan_request("mobilenet")).body;
  ASSERT_FALSE(reference.empty());

  constexpr int kClients = 8;
  std::vector<std::thread> threads;
  std::vector<std::string> failures(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      try {
        Client client = daemon.connect();
        for (int k = 0; k < 4; ++k) {
          const Response response =
              client.call_ok(plan_request("mobilenet"));
          if (response.body != reference) {
            failures[c] = "plan bytes diverged";
            return;
          }
        }
      } catch (const std::exception& e) {
        failures[c] = e.what();
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (const std::string& failure : failures) {
    EXPECT_EQ(failure, "");
  }
}

TEST(Server, ShutdownVerbDrainsAndStops) {
  TestDaemon daemon;
  Client client = daemon.connect();
  ASSERT_FALSE(client.call_ok(plan_request("resnet18")).body.empty());
  Request shutdown_request;
  shutdown_request.verb = "shutdown";
  const Response ack = client.call_ok(shutdown_request);
  EXPECT_EQ(ack.get("stopping"), "1");
  const std::uint64_t served = daemon.server->wait();
  EXPECT_GE(served, 2u);  // the plan + the shutdown ack
  daemon.server.reset();
  daemon.service.reset();
}

TEST(Server, RequestStopUnblocksIdleConnections) {
  TestDaemon daemon({}, /*preload=*/false);
  // An idle client parked in recv() must not hang shutdown.
  Client idle = daemon.connect();
  Request ping;
  ping.verb = "ping";
  ASSERT_TRUE(idle.call_ok(ping).ok);
  daemon.server->request_stop();
  const std::uint64_t served = daemon.server->stop();
  EXPECT_EQ(served, 1u);
}

TEST(Server, ServesManySequentialConnections) {
  TestDaemon daemon({}, /*preload=*/false);
  Request ping;
  ping.verb = "ping";
  // Churn through short-lived connections: the acceptor must reap
  // finished connection threads rather than accumulate them.
  for (int i = 0; i < 32; ++i) {
    Client client = daemon.connect();
    ASSERT_TRUE(client.call_ok(ping).ok);
  }
  EXPECT_EQ(daemon.server->stop(), 32u);
}

TEST(Server, PipelinedRequestsAnswerInOrder) {
  TestDaemon daemon;
  Client client = daemon.connect();
  // Burst N frames down one connection without reading anything, mixing
  // models (distinct bodies) so an ordering bug is visible as a body
  // mismatch, not just a theoretical race.  Workers may finish out of
  // order; the loop must release responses in request order.
  const std::string models[] = {"resnet18", "mobilenet", "mnasnet"};
  std::vector<std::string> expected;
  for (const std::string& model : models) {
    expected.push_back(client.call_ok(plan_request(model)).body);
    ASSERT_FALSE(expected.back().empty());
  }
  constexpr int kRounds = 8;
  for (int r = 0; r < kRounds; ++r) {
    for (const std::string& model : models) {
      client.send(plan_request(model));
    }
  }
  for (int r = 0; r < kRounds; ++r) {
    for (std::size_t m = 0; m < std::size(models); ++m) {
      const Response response = client.receive();
      ASSERT_TRUE(response.ok) << response.get("message");
      EXPECT_EQ(response.body, expected[m])
          << "round " << r << " model " << models[m];
    }
  }
}

TEST(Server, ErrorMidPipelineKeepsConnectionAndOrder) {
  TestDaemon daemon;
  Client client = daemon.connect();
  const std::string good = client.call_ok(plan_request("resnet18")).body;
  client.send(plan_request("resnet18"));
  client.send(plan_request("nosuchmodel"));  // error response, not a drop
  client.send(plan_request("resnet18"));
  EXPECT_EQ(client.receive().body, good);
  EXPECT_FALSE(client.receive().ok);
  EXPECT_EQ(client.receive().body, good);
}

TEST(Server, HostilePartialFrameInterleaving) {
  TestDaemon daemon({}, /*preload=*/false);
  const int fd = raw_connect(daemon.server->port());
  // Three pipelined pings delivered one byte at a time: every recv() on
  // the server sees a partial frame, and frame boundaries never align
  // with read boundaries.  The parser must reassemble all three.
  std::string wire;
  Request ping;
  ping.verb = "ping";
  const std::string payload = encode_request(ping);
  for (int i = 0; i < 3; ++i) {
    append_frame(wire, payload);
  }
  for (const char byte : wire) {
    ASSERT_EQ(::send(fd, &byte, 1, 0), 1);
  }
  // Read three complete response frames back.
  std::string response_bytes;
  char buf[4096];
  std::size_t frames_seen = 0;
  while (frames_seen < 3) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0) << "server closed before all responses arrived";
    response_bytes.append(buf, static_cast<std::size_t>(n));
    frames_seen = 0;
    std::string_view rest(response_bytes);
    std::string_view frame_payload;
    while (true) {
      const std::size_t consumed =
          try_parse_frame(rest, frame_payload, kMaxFrameBytes);
      if (consumed == 0) {
        break;
      }
      const Response response = decode_response(frame_payload);
      EXPECT_EQ(response.get("server"), "rainbowd");
      rest.remove_prefix(consumed);
      ++frames_seen;
    }
  }
  EXPECT_EQ(frames_seen, 3u);
  ::close(fd);
}

}  // namespace
}  // namespace rainbow::serve
