// Golden-dimension tests for the hand-encoded zoo: spot-checks of known
// layer shapes from the original architecture papers, guarding the tables
// against silent edits.  Parameterized as (model, layer name, expected
// ih, ci, fh, nf, s, oh).
#include <gtest/gtest.h>

#include "model/zoo/zoo.hpp"

namespace rainbow::model::zoo {
namespace {

struct GoldenLayer {
  const char* model;
  const char* layer;
  int ih, ci, fh, nf, s, oh;
};

class GoldenDims : public ::testing::TestWithParam<GoldenLayer> {};

TEST_P(GoldenDims, MatchesTheArchitecturePaper) {
  const GoldenLayer g = GetParam();
  const Network net = by_name(g.model);
  const Layer* found = nullptr;
  for (const Layer& layer : net.layers()) {
    if (layer.name() == g.layer) {
      found = &layer;
      break;
    }
  }
  ASSERT_NE(found, nullptr) << g.model << "/" << g.layer;
  EXPECT_EQ(found->ifmap_h(), g.ih);
  EXPECT_EQ(found->channels(), g.ci);
  EXPECT_EQ(found->filter_h(), g.fh);
  EXPECT_EQ(found->filters(), g.nf);
  EXPECT_EQ(found->stride(), g.s);
  EXPECT_EQ(found->ofmap_h(), g.oh);
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, GoldenDims,
    ::testing::Values(
        // ResNet18: stem, stage transitions, projections, head.
        GoldenLayer{"ResNet18", "conv1", 224, 3, 7, 64, 2, 112},
        GoldenLayer{"ResNet18", "conv3_1a", 56, 64, 3, 128, 2, 28},
        GoldenLayer{"ResNet18", "conv3_proj", 56, 64, 1, 128, 2, 28},
        GoldenLayer{"ResNet18", "conv5_2b", 7, 512, 3, 512, 1, 7},
        GoldenLayer{"ResNet18", "fc", 1, 512, 1, 1000, 1, 1},
        // MobileNet: the 13 separable pairs' corner points.
        GoldenLayer{"MobileNet", "sep1_dw", 112, 32, 3, 32, 1, 112},
        GoldenLayer{"MobileNet", "sep2_dw", 112, 64, 3, 64, 2, 56},
        GoldenLayer{"MobileNet", "sep12_pw", 7, 512, 1, 1024, 1, 7},
        // MobileNetV2: the inverted-residual groups.
        GoldenLayer{"MobileNetV2", "block2_expand", 112, 16, 1, 96, 1, 112},
        GoldenLayer{"MobileNetV2", "block2_dw", 112, 96, 3, 96, 2, 56},
        GoldenLayer{"MobileNetV2", "block17_project", 7, 960, 1, 320, 1, 7},
        GoldenLayer{"MobileNetV2", "conv_head", 7, 320, 1, 1280, 1, 7},
        // GoogLeNet: stem and inception 4e's 5x5 branch.
        GoldenLayer{"GoogLeNet", "conv2", 56, 64, 3, 192, 1, 56},
        GoldenLayer{"GoogLeNet", "4e_5x5", 14, 32, 5, 128, 1, 14},
        GoldenLayer{"GoogLeNet", "5b_1x1", 7, 832, 1, 384, 1, 7},
        GoldenLayer{"GoogLeNet", "aux1_fc1", 1, 2048, 1, 1024, 1, 1},
        // MnasNet-B1: 5x5 stages.
        GoldenLayer{"MnasNet", "block4_dw", 56, 72, 5, 72, 2, 28},
        GoldenLayer{"MnasNet", "block16_project", 7, 1152, 1, 320, 1, 7},
        // EfficientNet-B0: squeeze-and-excite shapes.
        GoldenLayer{"EfficientNetB0", "block2_se_squeeze", 1, 96, 1, 4, 1, 1},
        GoldenLayer{"EfficientNetB0", "block15_dw", 7, 1152, 5, 1152, 1, 7},
        // Extras.
        GoldenLayer{"VGG16", "conv5_3", 14, 512, 3, 512, 1, 14},
        GoldenLayer{"AlexNet", "conv1", 227, 3, 11, 96, 4, 55}),
    [](const auto& info) {
      std::string name = std::string(info.param.model) + "_" +
                         info.param.layer;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) {
          c = '_';
        }
      }
      return name;
    });

}  // namespace
}  // namespace rainbow::model::zoo
