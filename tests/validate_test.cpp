// Tests for the invariant-checking validation layer: every planner output
// must re-derive clean, and each class of plan corruption must surface as
// its own diagnostic code (not a generic failure), so regressions in the
// closed forms are attributed to the precise paper invariant they break.
#include <gtest/gtest.h>

#include <optional>

#include "core/manager.hpp"
#include "model/zoo/zoo.hpp"
#include "validate/plan_validator.hpp"

namespace rainbow::validate {
namespace {

using core::Estimator;
using core::ExecutionPlan;
using core::ManagerOptions;
using core::MemoryManager;
using core::Objective;
using core::Policy;

arch::AcceleratorSpec spec_kb(count_t kb) {
  return arch::paper_spec(util::kib(kb));
}

ValidationReport run(const ExecutionPlan& plan, const model::Network& net) {
  return PlanValidator(ValidatorOptions{}).validate(plan, net);
}

/// Deep-copies `plan` so a test can corrupt one assignment.
ExecutionPlan clone(const ExecutionPlan& plan,
                    std::optional<arch::AcceleratorSpec> spec = {}) {
  ExecutionPlan copy(plan.scheme(), plan.model(), spec.value_or(plan.spec()),
                     plan.objective());
  for (const auto& a : plan.assignments()) {
    copy.add(a);
  }
  return copy;
}

TEST(PlanValidator, AllZooPlansAreClean) {
  for (const auto& name : model::zoo::model_names()) {
    const auto net = model::zoo::by_name(name);
    for (count_t kb : {count_t{64}, count_t{256}}) {
      const MemoryManager manager(spec_kb(kb));
      for (Objective obj : {Objective::kAccesses, Objective::kLatency}) {
        const auto het = run(manager.plan(net, obj), net);
        EXPECT_TRUE(het.ok()) << name << " het @ " << kb << " kB\n"
                              << het.summary();
        const auto hom = run(manager.plan_homogeneous(net, obj), net);
        EXPECT_TRUE(hom.ok()) << name << " hom @ " << kb << " kB\n"
                              << hom.summary();
      }
    }
  }
}

TEST(PlanValidator, InterlayerPlansAreClean) {
  ManagerOptions options;
  options.interlayer_reuse = true;
  const MemoryManager manager(spec_kb(1024), options);
  for (const auto& net : {model::zoo::mnasnet(), model::zoo::mobilenetv2()}) {
    const auto plan = manager.plan(net, Objective::kAccesses);
    ASSERT_GT(plan.interlayer_links(), 0u) << net.name();
    const auto report = run(plan, net);
    EXPECT_TRUE(report.ok()) << net.name() << "\n" << report.summary();
  }
}

TEST(PlanValidator, BatchedAndUnpaddedPlansAreClean) {
  ManagerOptions options;
  options.analyzer.estimator.batch = 8;
  options.analyzer.estimator.padded_traffic = false;
  const MemoryManager manager(spec_kb(128), options);
  const auto net = model::zoo::googlenet();
  const auto plan = manager.plan(net, Objective::kLatency);
  ValidatorOptions voptions;
  voptions.estimator = options.analyzer.estimator;
  const auto report = PlanValidator(voptions).validate(plan, net);
  EXPECT_TRUE(report.ok()) << report.summary();
}

// Every feasible policy x prefetch applied network-wide must also re-derive
// clean — the validator's closed forms mirror the estimator across the full
// policy grid, not just the choices Algorithm 1 happens to pick.
TEST(PlanValidator, PolicyGridIsClean) {
  for (const auto& net : {model::zoo::resnet18(), model::zoo::mobilenet()}) {
    const auto spec = spec_kb(256);
    const MemoryManager manager(spec);
    const Estimator estimator(spec);
    const auto base = manager.plan(net, Objective::kAccesses);
    for (Policy policy : core::kAllPolicies) {
      for (bool prefetch : {false, true}) {
        auto plan = clone(base);
        for (std::size_t i = 0; i < net.size(); ++i) {
          const auto est = estimator.estimate(net.layer(i), policy, prefetch);
          if (est.feasible) {
            plan.mutable_assignment(i).estimate = est;
          }
        }
        const auto report = run(plan, net);
        EXPECT_TRUE(report.ok())
            << net.name() << " " << core::to_string(policy) << " prefetch="
            << prefetch << "\n" << report.summary();
      }
    }
  }
}

class BadPlanFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    net_.emplace(model::zoo::resnet18());
    plan_.emplace(MemoryManager(spec_kb(64)).plan(*net_,
                                                  Objective::kAccesses));
  }

  /// First assignment whose choice satisfies `pred`; fails the test if none.
  std::size_t find(auto pred) {
    for (std::size_t i = 0; i < plan_->size(); ++i) {
      if (pred(plan_->assignment(i))) {
        return i;
      }
    }
    ADD_FAILURE() << "no assignment matches the fixture predicate";
    return 0;
  }

  std::optional<model::Network> net_;
  std::optional<ExecutionPlan> plan_;
};

TEST_F(BadPlanFixture, TruncatedPlanIsV002) {
  ExecutionPlan short_plan(plan_->scheme(), plan_->model(), plan_->spec(),
                           plan_->objective());
  for (std::size_t i = 0; i + 1 < plan_->size(); ++i) {
    short_plan.add(plan_->assignment(i));
  }
  const auto report = run(short_plan, *net_);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(Code::kLayerIndexMismatch)) << report.summary();
}

TEST_F(BadPlanFixture, OversizedFilterBlockIsV003) {
  auto plan = clone(*plan_);
  const std::size_t i = find([](const core::LayerAssignment& a) {
    return a.estimate.choice.policy == Policy::kPartialIfmap ||
           a.estimate.choice.policy == Policy::kPartialPerChannel ||
           a.estimate.choice.policy == Policy::kFallbackTiled;
  });
  plan.mutable_assignment(i).estimate.choice.filter_block = 1 << 30;
  const auto report = run(plan, *net_);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(Code::kTileOutOfRange)) << report.summary();
}

TEST_F(BadPlanFixture, TamperedFootprintIsV004) {
  auto plan = clone(*plan_);
  plan.mutable_assignment(0).estimate.footprint.filter += 1;
  const auto report = run(plan, *net_);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(Code::kFootprintMismatch)) << report.summary();
  EXPECT_FALSE(report.has(Code::kPrefetchDoubling)) << report.summary();
}

TEST_F(BadPlanFixture, SingleBufferedPrefetchIsV005) {
  // Flip the prefetch flag without re-deriving the footprint: the stored
  // footprint is exactly the single-buffered form, which is the specific
  // Eq. 2 violation (not a generic V004 mismatch).
  auto plan = clone(*plan_);
  const std::size_t i = find([](const core::LayerAssignment& a) {
    return !a.estimate.choice.prefetch;
  });
  plan.mutable_assignment(i).estimate.choice.prefetch = true;
  ValidatorOptions options = PlanValidator::structural_only();
  const auto report = PlanValidator(options).validate(plan, *net_);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(Code::kPrefetchDoubling)) << report.summary();
  EXPECT_FALSE(report.has(Code::kFootprintMismatch)) << report.summary();
}

TEST_F(BadPlanFixture, ShrunkGlbIsV006) {
  // Same assignments, 1 kB header spec: every footprint re-derives fine but
  // no longer fits.
  const auto plan = clone(*plan_, spec_kb(1));
  const auto report =
      PlanValidator(PlanValidator::structural_only()).validate(plan, *net_);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(Code::kGlbOverflow)) << report.summary();
}

TEST_F(BadPlanFixture, InfeasibleEstimateIsV007) {
  auto plan = clone(*plan_);
  plan.mutable_assignment(0).estimate.feasible = false;
  const auto report = run(plan, *net_);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(Code::kFeasibilityFlag)) << report.summary();
}

TEST_F(BadPlanFixture, WrongIfmapReloadVolumeIsV008) {
  // A partial-policy ifmap term is base x ceil(F#/n); corrupting it must be
  // attributed to the fold-count invariant, not generic traffic.
  const auto spec = spec_kb(64);
  const Estimator estimator(spec);
  auto plan = clone(*plan_);
  const std::size_t i = find([&](const core::LayerAssignment& a) {
    const auto& layer = net_->layer(a.layer_index);
    if (layer.is_depthwise()) {
      return false;
    }
    return estimator.estimate(layer, Policy::kPartialIfmap, false).feasible;
  });
  plan.mutable_assignment(i).estimate =
      estimator.estimate(net_->layer(i), Policy::kPartialIfmap, false);
  plan.mutable_assignment(i).estimate.traffic.ifmap_reads += 12345;
  ValidatorOptions options;
  options.check_latency = false;  // isolate the traffic diagnostic
  const auto report = PlanValidator(options).validate(plan, *net_);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(Code::kFoldCountMismatch)) << report.summary();
  EXPECT_FALSE(report.has(Code::kTrafficMismatch)) << report.summary();
}

TEST_F(BadPlanFixture, WrongOfmapVolumeIsV009) {
  auto plan = clone(*plan_);
  plan.mutable_assignment(0).estimate.traffic.ofmap_writes += 1;
  ValidatorOptions options;
  options.check_latency = false;
  const auto report = PlanValidator(options).validate(plan, *net_);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(Code::kTrafficMismatch)) << report.summary();
}

TEST_F(BadPlanFixture, TamperedLatencyIsV010) {
  auto plan = clone(*plan_);
  plan.mutable_assignment(0).estimate.latency_cycles *= 2.0;
  const auto report = run(plan, *net_);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(Code::kLatencyMismatch)) << report.summary();
}

TEST_F(BadPlanFixture, DanglingReuseLinkIsV011) {
  auto plan = clone(*plan_);
  plan.mutable_assignment(0).ifmap_from_glb = true;  // layer 0 has no producer
  const auto report =
      PlanValidator(PlanValidator::structural_only()).validate(plan, *net_);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(Code::kInterlayerBroken)) << report.summary();
}

TEST(PlanValidatorOptions, StructuralOnlySkipsTrafficAndLatency) {
  const auto net = model::zoo::mobilenet();
  auto plan = MemoryManager(spec_kb(64)).plan(net, Objective::kAccesses);
  plan.mutable_assignment(0).estimate.traffic.ofmap_writes += 7;
  plan.mutable_assignment(0).estimate.latency_cycles *= 3.0;
  const auto structural =
      PlanValidator(PlanValidator::structural_only()).validate(plan, net);
  EXPECT_TRUE(structural.ok()) << structural.summary();
  const auto full = PlanValidator(ValidatorOptions{}).validate(plan, net);
  EXPECT_FALSE(full.ok());
}

TEST(Diagnostics, MessageCarriesCodeSeverityLayerAndValues) {
  Diagnostic d;
  d.code = Code::kGlbOverflow;
  d.severity = Severity::kError;
  d.layer = 3;
  d.context = "conv2_1";
  d.expected = "<= 65536";
  d.actual = "131072";
  d.detail = "planned footprint exceeds the GLB capacity";
  const std::string m = d.message();
  EXPECT_NE(m.find("V006"), std::string::npos) << m;
  EXPECT_NE(m.find("error"), std::string::npos) << m;
  EXPECT_NE(m.find("layer 3"), std::string::npos) << m;
  EXPECT_NE(m.find("conv2_1"), std::string::npos) << m;
  EXPECT_NE(m.find("65536"), std::string::npos) << m;
  EXPECT_NE(m.find("131072"), std::string::npos) << m;
}

TEST(Diagnostics, ReportAccounting) {
  ValidationReport report;
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.empty());
  Diagnostic warn;
  warn.code = Code::kInterlayerWindow;
  warn.severity = Severity::kWarning;
  report.add(warn);
  EXPECT_TRUE(report.ok());  // warnings alone do not fail validation
  EXPECT_EQ(report.warning_count(), 1u);
  Diagnostic err;
  err.code = Code::kGlbOverflow;
  report.add(err);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.error_count(), 1u);
  EXPECT_TRUE(report.has(Code::kGlbOverflow));
  EXPECT_EQ(report.count(Code::kInterlayerWindow), 1u);

  ValidationReport other;
  other.add(err);
  report.merge(other);
  EXPECT_EQ(report.error_count(), 2u);
  EXPECT_EQ(report.count(Code::kGlbOverflow), 2u);
}

}  // namespace
}  // namespace rainbow::validate
