// Concurrency stress for the evaluation cache and the planner paths built
// on it.  One shared cache is hammered from the thread pool with a mixed
// workload of hot (repeated) and cold (unique) layer signatures; afterwards
// the counter invariants must hold exactly — hits + misses == lookups,
// inserts - evictions == entries — and every thread must have observed the
// same estimate the sequential path computes (no lost or torn inserts).
// These binaries are also the ones the CI ThreadSanitizer job runs.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "core/eval_cache.hpp"
#include "core/manager.hpp"
#include "model/zoo/zoo.hpp"
#include "util/thread_pool.hpp"

namespace rainbow::core {
namespace {

model::Layer hot_layer(int i) {
  // 16 distinct shapes, requested over and over.
  return model::make_conv("hot", 14 + (i % 4), 14 + (i % 4), 32, 3, 3,
                          64 + 16 * (i % 4), 1, 1);
}

model::Layer cold_layer(int i) {
  // Unique shape per call: forces a miss + insert every time.
  return model::make_conv("cold", 8 + i % 97, 8 + (i * 7) % 89, 3 + i % 13, 3,
                          3, 8 + i % 31, 1, 1);
}

TEST(EvalCacheStress, MixedHotColdWorkloadKeepsCountersConsistent) {
  const arch::AcceleratorSpec spec = arch::paper_spec(util::kib(256));
  AnalyzerOptions options;
  auto cache = std::make_shared<EvalCache>();
  options.eval_cache = cache;
  const Analyzer analyzer(spec, options);
  const Analyzer uncached(spec, AnalyzerOptions{});

  constexpr int kTasks = 64;
  constexpr int kIterations = 200;
  std::atomic<int> mismatches{0};
  std::vector<int> task_ids(kTasks);
  for (int t = 0; t < kTasks; ++t) {
    task_ids[t] = t;
  }
  util::parallel_for_each(
      task_ids,
      [&](int t) {
        for (int i = 0; i < kIterations; ++i) {
          const model::Layer layer = (i % 3 == 0)
                                         ? cold_layer(t * kIterations + i)
                                         : hot_layer(i);
          const Objective objective =
              (i % 2 == 0) ? Objective::kAccesses : Objective::kLatency;
          const Estimate via_cache = analyzer.best_estimate(layer, objective);
          const Estimate direct = uncached.best_estimate(layer, objective);
          if (!(via_cache == direct)) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      },
      /*threads=*/8);

  EXPECT_EQ(mismatches.load(), 0);
  const EvalCacheStats stats = cache->stats();
  EXPECT_EQ(stats.hits + stats.misses, stats.lookups);
  EXPECT_EQ(stats.lookups,
            static_cast<std::uint64_t>(kTasks) * kIterations);
  // No lost inserts: every resident entry is accounted for by an insert
  // that was not later evicted, and nothing fell through the cracks.
  EXPECT_EQ(stats.inserts - stats.evictions, stats.entries);
  EXPECT_LE(stats.inserts, stats.misses);
  EXPECT_GT(stats.hits, 0u);
}

TEST(EvalCacheStress, RawInsertLookupRaceOnOneKeySetIsCoherent) {
  EvalCache cache(/*max_entries=*/64);  // small: force constant eviction
  const arch::AcceleratorSpec spec = arch::paper_spec(util::kib(64));
  const AnalyzerOptions options;

  std::vector<EvalKey> keys;
  keys.reserve(128);
  for (int i = 0; i < 128; ++i) {
    keys.push_back(make_eval_key(cold_layer(i), spec, Objective::kAccesses,
                                 options,
                                 {.ifmap_resident = (i % 2) != 0,
                                  .keep_ofmap = (i % 4) == 0}));
  }

  std::vector<int> workers(8);
  std::atomic<int> bad_values{0};
  util::parallel_for_each(
      workers,
      [&](int&) {
        for (int round = 0; round < 500; ++round) {
          const EvalKey& key = keys[round % keys.size()];
          Estimate est;
          est.feasible = true;
          // The value is derived from the key so a torn read is detectable.
          est.traffic.ifmap_reads = key.hash();
          cache.insert(key, est);
          if (auto hit = cache.lookup(key)) {
            if (hit->traffic.ifmap_reads != key.hash()) {
              bad_values.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      });

  EXPECT_EQ(bad_values.load(), 0);
  const EvalCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, stats.lookups);
  EXPECT_EQ(stats.inserts - stats.evictions, stats.entries);
  EXPECT_LE(stats.entries, cache.capacity());
}

TEST(EvalCacheStress, ParallelPlansShareOneCacheAcrossManagers) {
  const arch::AcceleratorSpec spec = arch::paper_spec(util::kib(256));
  auto cache = std::make_shared<EvalCache>();
  const auto net = model::zoo::mobilenetv2();

  const MemoryManager sequential(spec);
  const ExecutionPlan golden = sequential.plan(net, Objective::kAccesses);

  std::vector<int> runs(12);
  std::atomic<int> divergences{0};
  util::parallel_for_each(runs, [&](int&) {
    ManagerOptions options;
    options.analyzer.eval_cache = cache;
    options.parallel_planning = true;
    options.planning_threads = 2;
    const MemoryManager manager(spec, options);
    const ExecutionPlan plan = manager.plan(net, Objective::kAccesses);
    if (!(plan.assignments() == golden.assignments())) {
      divergences.fetch_add(1, std::memory_order_relaxed);
    }
  });

  EXPECT_EQ(divergences.load(), 0);
  const EvalCacheStats stats = cache->stats();
  EXPECT_EQ(stats.hits + stats.misses, stats.lookups);
  EXPECT_EQ(stats.inserts - stats.evictions, stats.entries);
}

}  // namespace
}  // namespace rainbow::core
