// Engine <-> estimator cross-validation: the discrete tile-level execution
// must reproduce the closed-form traffic exactly, the serialized latency
// exactly, and the prefetch latency within one tile of pipeline skew.
#include <gtest/gtest.h>

#include "core/manager.hpp"
#include "engine/engine.hpp"
#include "model/zoo/zoo.hpp"

namespace rainbow::engine {
namespace {

using core::Estimator;
using core::Policy;
using core::PolicyChoice;
using model::Layer;
using model::make_conv;
using model::make_depthwise;

arch::AcceleratorSpec spec_kb(count_t kb) { return arch::paper_spec(util::kib(kb)); }

std::vector<Layer> sample_layers() {
  return {
      make_conv("conv", 14, 14, 32, 3, 3, 64, 1, 1),
      make_conv("strided", 28, 28, 16, 5, 5, 24, 2, 2),
      make_depthwise("dw", 28, 28, 32, 3, 3, 1, 1),
      model::make_pointwise("pw", 28, 28, 32, 64),
      model::make_fully_connected("fc", 256, 100),
  };
}

TEST(Engine, TrafficMatchesEstimatorExactly) {
  const auto spec = spec_kb(1024);
  const Engine engine(spec);
  const Estimator est(spec);
  for (const Layer& layer : sample_layers()) {
    for (Policy p : core::kAllPolicies) {
      for (bool prefetch : {false, true}) {
        const auto e = est.estimate(layer, p, prefetch);
        if (!e.feasible) {
          continue;
        }
        const LayerExecution exec = engine.execute_layer(layer, e.choice);
        EXPECT_EQ(exec.traffic.ifmap_reads, e.traffic.ifmap_reads)
            << layer.name() << " " << core::to_string(p);
        EXPECT_EQ(exec.traffic.filter_reads, e.traffic.filter_reads)
            << layer.name() << " " << core::to_string(p);
        EXPECT_EQ(exec.traffic.ofmap_writes, e.traffic.ofmap_writes)
            << layer.name() << " " << core::to_string(p);
        EXPECT_EQ(exec.macs, layer.macs());
      }
    }
  }
}

TEST(Engine, SerializedLatencyMatchesEstimator) {
  const auto spec = spec_kb(1024);
  const Engine engine(spec);
  const Estimator est(spec);
  for (const Layer& layer : sample_layers()) {
    for (Policy p : core::kAllPolicies) {
      const auto e = est.estimate(layer, p, /*prefetch=*/false);
      if (!e.feasible) {
        continue;
      }
      const LayerExecution exec = engine.execute_layer(layer, e.choice);
      EXPECT_NEAR(exec.latency_cycles, e.latency_cycles,
                  1e-6 * e.latency_cycles)
          << layer.name() << " " << core::to_string(p);
    }
  }
}

TEST(Engine, PrefetchLatencyWithinPipelineSkew) {
  const auto spec = spec_kb(1024);
  const Engine engine(spec);
  const Estimator est(spec);
  for (const Layer& layer : sample_layers()) {
    for (Policy p : core::kAllPolicies) {
      const auto e = est.estimate(layer, p, /*prefetch=*/true);
      if (!e.feasible) {
        continue;
      }
      const LayerExecution exec = engine.execute_layer(layer, e.choice);
      // Engine resolves per-tile contention; the closed form hides
      // everything between init and drain, so the engine runs longer by
      // cross-resource dependency stalls — worst near compute/transfer
      // balance, bounded well under ~35% on these shapes.
      EXPECT_GE(exec.latency_cycles, 0.99 * e.latency_cycles)
          << layer.name() << " " << core::to_string(p);
      EXPECT_LE(exec.latency_cycles, 1.35 * e.latency_cycles + 64.0)
          << layer.name() << " " << core::to_string(p);
    }
  }
}

TEST(Engine, PrefetchBeatsSerializedExecution) {
  const auto spec = spec_kb(1024);
  const Engine engine(spec);
  const Layer layer = make_conv("c", 28, 28, 64, 3, 3, 128, 1, 1);
  const LayerExecution serial = engine.execute_layer(
      layer, PolicyChoice{.policy = Policy::kIfmapReuse, .prefetch = false});
  const LayerExecution overlap = engine.execute_layer(
      layer, PolicyChoice{.policy = Policy::kIfmapReuse, .prefetch = true});
  EXPECT_LT(overlap.latency_cycles, serial.latency_cycles);
  // Both are bounded below by compute and by the DRAM channel occupancy.
  const double transfer =
      static_cast<double>(overlap.traffic.total()) / spec.elements_per_cycle();
  EXPECT_GE(overlap.latency_cycles,
            std::max(overlap.compute_cycles, transfer) - 1e-9);
}

TEST(Engine, AllocatorRejectsInfeasibleChoice) {
  arch::AcceleratorSpec tiny = spec_kb(64);
  tiny.glb_bytes = 2048;
  const Engine engine(tiny);
  const Layer layer = make_conv("big", 56, 56, 64, 3, 3, 128, 1, 1);
  EXPECT_THROW(
      (void)engine.execute_layer(layer,
                                 PolicyChoice{.policy = Policy::kIntraLayer}),
      std::runtime_error);
}

TEST(Engine, PeakGlbMatchesPlannedFootprint) {
  const auto spec = spec_kb(1024);
  const Engine engine(spec);
  const Layer layer = make_conv("c", 14, 14, 32, 3, 3, 64, 1, 1);
  const PolicyChoice choice{.policy = Policy::kPerChannel, .prefetch = true};
  const LayerExecution exec = engine.execute_layer(layer, choice);
  EXPECT_EQ(exec.peak_glb_elems,
            core::planned_footprint(layer, choice).total());
}

TEST(Engine, ExecutesFullHetPlans) {
  // End-to-end: every layer of a real plan executes, and the engine's
  // measured totals equal the plan's estimated totals.
  const auto spec = spec_kb(64);
  const Engine engine(spec);
  const core::MemoryManager manager(spec);
  for (const auto& net : {model::zoo::mobilenet(), model::zoo::resnet18()}) {
    const auto plan = manager.plan(net, core::Objective::kAccesses);
    const PlanExecution exec = engine.execute_plan(plan, net);
    ASSERT_EQ(exec.layers.size(), plan.size());
    EXPECT_EQ(exec.total_accesses, plan.total_accesses()) << net.name();
  }
}

TEST(Engine, ExecutesInterlayerPlans) {
  const auto spec = spec_kb(1024);
  const Engine engine(spec);
  core::ManagerOptions options;
  options.interlayer_reuse = true;
  const core::MemoryManager manager(spec, options);
  const auto net = model::zoo::mnasnet();
  const auto plan = manager.plan(net, core::Objective::kAccesses);
  ASSERT_GT(plan.interlayer_links(), 0u);
  const PlanExecution exec = engine.execute_plan(plan, net);
  EXPECT_EQ(exec.total_accesses, plan.total_accesses());
}

TEST(Engine, PlanNetworkMismatchThrows) {
  const auto spec = spec_kb(64);
  const Engine engine(spec);
  const core::ExecutionPlan empty("x", "y", spec, core::Objective::kAccesses);
  EXPECT_THROW((void)engine.execute_plan(empty, model::zoo::mobilenet()),
               std::invalid_argument);
}

}  // namespace
}  // namespace rainbow::engine
