// Validation of the model zoo against the paper and the original
// architecture papers: layer counts and layer-type mixes (Table 2), MAC
// totals (published values), dimension chaining, and the Table 3 memory
// requirements our footprint conventions were calibrated against.
#include <gtest/gtest.h>

#include <map>

#include "arch/accelerator.hpp"
#include "core/estimator.hpp"
#include "model/zoo/zoo.hpp"

namespace rainbow::model::zoo {
namespace {

using core::Estimator;
using core::Policy;
using core::PolicyChoice;

struct Expectation {
  std::size_t layers;
  double macs_millions_low;
  double macs_millions_high;
  std::vector<LayerKind> kinds;  // the layer-type mix of Table 2
};

// Layer counts are Table 2's; MAC windows bracket the published totals for
// one 224x224 inference (ResNet18 ~1.8G, GoogLeNet ~1.5G incl. aux heads,
// MobileNet ~569M, MobileNetV2 ~300M, MnasNet-B1 ~315M, B0 ~390M).
const std::map<std::string, Expectation>& expectations() {
  static const std::map<std::string, Expectation> kExpect = {
      {"EfficientNetB0",
       {82, 350, 420, {LayerKind::kConv, LayerKind::kDepthwise,
                       LayerKind::kPointwise, LayerKind::kFullyConnected}}},
      {"GoogLeNet",
       {64, 1400, 1700, {LayerKind::kConv, LayerKind::kPointwise,
                         LayerKind::kFullyConnected}}},
      {"MnasNet",
       {53, 280, 350, {LayerKind::kConv, LayerKind::kDepthwise,
                       LayerKind::kPointwise, LayerKind::kFullyConnected}}},
      {"MobileNet",
       {28, 540, 600, {LayerKind::kConv, LayerKind::kDepthwise,
                       LayerKind::kPointwise, LayerKind::kFullyConnected}}},
      {"MobileNetV2",
       {53, 280, 330, {LayerKind::kConv, LayerKind::kDepthwise,
                       LayerKind::kPointwise, LayerKind::kFullyConnected}}},
      // Table 2 lists PW for ResNet18, but the vanilla architecture's only
      // 1x1 convolutions are the projection shortcuts, which the paper
      // separately labels PL; we classify them as PL only.
      {"ResNet18",
       {21, 1700, 1900, {LayerKind::kConv, LayerKind::kFullyConnected,
                         LayerKind::kProjection}}},
  };
  return kExpect;
}

TEST(Zoo, LayerCountsMatchTable2) {
  for (const Network& net : all_models()) {
    ASSERT_TRUE(expectations().count(net.name())) << net.name();
    EXPECT_EQ(net.size(), expectations().at(net.name()).layers) << net.name();
  }
}

TEST(Zoo, MacTotalsMatchPublishedValues) {
  for (const Network& net : all_models()) {
    const auto& exp = expectations().at(net.name());
    const double macs_m = static_cast<double>(net.total_macs()) / 1e6;
    EXPECT_GE(macs_m, exp.macs_millions_low) << net.name();
    EXPECT_LE(macs_m, exp.macs_millions_high) << net.name();
  }
}

TEST(Zoo, LayerTypeMixMatchesTable2) {
  for (const Network& net : all_models()) {
    const auto& exp = expectations().at(net.name());
    for (LayerKind kind : exp.kinds) {
      EXPECT_GT(net.count_kind(kind), 0u)
          << net.name() << " missing " << to_string(kind);
    }
    // Kinds not in the mix must be absent (e.g. no DW in ResNet18).
    for (LayerKind kind :
         {LayerKind::kConv, LayerKind::kDepthwise, LayerKind::kPointwise,
          LayerKind::kFullyConnected, LayerKind::kProjection}) {
      const bool expected =
          std::find(exp.kinds.begin(), exp.kinds.end(), kind) != exp.kinds.end();
      if (!expected) {
        EXPECT_EQ(net.count_kind(kind), 0u)
            << net.name() << " has unexpected " << to_string(kind);
      }
    }
  }
}

TEST(Zoo, ResNet18Structure) {
  const Network net = resnet18();
  EXPECT_EQ(net.layer(0).name(), "conv1");
  EXPECT_EQ(net.layer(0).ofmap_h(), 112);
  EXPECT_EQ(net.count_kind(LayerKind::kProjection), 3u);
  EXPECT_EQ(net.layer(net.size() - 1).kind(), LayerKind::kFullyConnected);
  // Projections are branches off the previous stage output.
  bool found_branch = false;
  for (std::size_t i = 0; i < net.size(); ++i) {
    if (net.producer_of(i)) {
      found_branch = true;
      EXPECT_EQ(net.layer(i).kind(), LayerKind::kProjection);
    }
  }
  EXPECT_TRUE(found_branch);
}

TEST(Zoo, MobileNetAlternatesDepthwisePointwise) {
  const Network net = mobilenet();
  EXPECT_EQ(net.count_kind(LayerKind::kDepthwise), 13u);
  EXPECT_EQ(net.count_kind(LayerKind::kPointwise), 13u);
  // sep blocks: DW at odd indices 1,3,5,... after conv1.
  EXPECT_EQ(net.layer(1).kind(), LayerKind::kDepthwise);
  EXPECT_EQ(net.layer(2).kind(), LayerKind::kPointwise);
  // Final feature map is 7x7x1024.
  EXPECT_EQ(net.layer(26).ofmap_h(), 7);
  EXPECT_EQ(net.layer(26).ofmap_channels(), 1024);
}

TEST(Zoo, GoogLeNetInceptionBranchesAreRecorded) {
  const Network net = googlenet();
  std::size_t branch_count = 0;
  for (std::size_t i = 0; i < net.size(); ++i) {
    if (net.producer_of(i)) {
      ++branch_count;
    }
  }
  // 9 inception modules x 3 recorded branches + 2 aux-head taps.
  EXPECT_EQ(branch_count, 9u * 3 + 2);
}

TEST(Zoo, GoogLeNetAuxHeadMatchesTable3Peak) {
  // The aux-head dense layer 2048 -> 1024 is GoogLeNet's biggest layer and
  // produces the paper's 2051 kB intra-layer figure.
  const Network net = googlenet();
  bool found = false;
  for (const Layer& l : net.layers()) {
    if (l.name() == "aux1_fc1") {
      found = true;
      EXPECT_EQ(l.channels(), 2048);
      EXPECT_EQ(l.filters(), 1024);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Zoo, EfficientNetHasSqueezeExcite) {
  const Network net = efficientnetb0();
  // 16 blocks x 2 SE dense layers + the classifier = 33 FC layers.
  EXPECT_EQ(net.count_kind(LayerKind::kFullyConnected), 33u);
}

TEST(Zoo, MnasNetHasNoSqueezeExcite) {
  const Network net = mnasnet();
  // B1 variant: only the classifier is dense.
  EXPECT_EQ(net.count_kind(LayerKind::kFullyConnected), 1u);
}

TEST(Zoo, TrunkDimensionsChain) {
  // Along sequential boundaries where no pooling intervenes, the consumer's
  // ifmap channel count must equal the producer's ofmap channels.
  // (Spatial dims may change at the pooling layers the zoo does not count;
  // channels never do.)
  const std::map<std::string, std::vector<std::string>> pooling_after = {
      {"ResNet18", {"conv1"}},
      {"GoogLeNet", {"conv1", "conv2", "3b_pool_proj", "4e_pool_proj"}},
  };
  for (const Network& net : all_models()) {
    for (std::size_t i = 0; i + 1 < net.size(); ++i) {
      if (!net.is_sequential_boundary(i)) {
        continue;
      }
      const Layer& producer = net.layer(i);
      const Layer& consumer = net.layer(i + 1);
      // GoogLeNet serializes inception branches: the "next" trunk layer of a
      // branch output consumes the concatenated module output, not the
      // branch alone — skip those.
      if (net.name() == "GoogLeNet" &&
          consumer.channels() != producer.ofmap_channels()) {
        continue;
      }
      // SE layers operate on pooled 1x1 activations; projections back.
      if (producer.kind() == LayerKind::kFullyConnected ||
          consumer.kind() == LayerKind::kFullyConnected) {
        continue;
      }
      EXPECT_EQ(consumer.channels(), producer.ofmap_channels())
          << net.name() << " boundary " << producer.name() << " -> "
          << consumer.name();
    }
  }
}

TEST(Zoo, ByNameIsCaseInsensitive) {
  EXPECT_EQ(by_name("resnet18").name(), "ResNet18");
  EXPECT_EQ(by_name("RESNET18").name(), "ResNet18");
  EXPECT_EQ(by_name("MobileNetV2").name(), "MobileNetV2");
}

TEST(Zoo, ByNameUnknownThrows) {
  EXPECT_THROW((void)by_name("lenet5"), std::invalid_argument);
}

TEST(Zoo, ModelNamesMatchAllModels) {
  const auto names = model_names();
  const auto models = all_models();
  ASSERT_EQ(names.size(), models.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(models[i].name(), names[i]);
  }
}

// Table 3 of the paper, in kB at 8-bit: maximum per-layer footprint for the
// minimum-traffic policies.  The paper's table prints the text's Policy 1
// and Policy 3 columns swapped; expectations below follow the text
// definitions.  Tolerance 2.5% covers the paper's slightly different padding
// conventions (see DESIGN.md).
struct Table3Row {
  const char* model;
  double intra, p1, p2, p3;
};

class Table3Test : public ::testing::TestWithParam<Table3Row> {};

TEST_P(Table3Test, MaxFootprintMatchesPaper) {
  const Table3Row row = GetParam();
  const Network net = by_name(row.model);
  const Estimator est(arch::paper_spec(util::kib(1024)));
  auto max_kb = [&](Policy policy) {
    double mx = 0.0;
    for (const Layer& l : net.layers()) {
      const auto e = est.estimate_choice(l, PolicyChoice{.policy = policy});
      mx = std::max(mx, static_cast<double>(e.footprint.total()) / 1024.0);
    }
    return mx;
  };
  const double tol = 0.025;
  EXPECT_NEAR(max_kb(Policy::kIntraLayer), row.intra, row.intra * tol);
  EXPECT_NEAR(max_kb(Policy::kIfmapReuse), row.p1, row.p1 * tol);
  EXPECT_NEAR(max_kb(Policy::kFilterReuse), row.p2, row.p2 * tol);
  EXPECT_NEAR(max_kb(Policy::kPerChannel), row.p3, row.p3 * tol);
}

INSTANTIATE_TEST_SUITE_P(
    PaperTable3, Table3Test,
    ::testing::Values(
        // model, intra, P1(text: ifmap reuse), P2, P3(text: per-channel)
        Table3Row{"EfficientNetB0", 1491.9, 1252.3, 1201.0, 1176.2},
        Table3Row{"GoogLeNet", 2051.0, 2051.0, 199.7, 788.6},
        Table3Row{"MnasNet", 1252.3, 1252.3, 591.5, 588.2},
        Table3Row{"MobileNet", 1178.0, 1038.0, 801.7, 784.2},
        Table3Row{"MobileNetV2", 1491.9, 1252.3, 1201.0, 1176.2},
        Table3Row{"ResNet18", 2353.0, 2318.0, 199.7, 788.6}),
    [](const auto& info) { return info.param.model; });

}  // namespace
}  // namespace rainbow::model::zoo
