// Numerical validation of the Section 3.2 policies: every policy's loop
// nest computes bit-identical outputs to the golden reference convolution,
// while its staging buffers never exceed the closed-form footprint terms.
// This is the semantic-correctness proof behind the accounting the rest of
// the library does.
#include <gtest/gtest.h>

#include <tuple>

#include "core/footprint.hpp"
#include "ref/policy_exec.hpp"

namespace rainbow::ref {
namespace {

using core::Policy;
using core::PolicyChoice;
using model::Layer;
using model::LayerKind;

TEST(Tensor, BoundsChecking) {
  Tensor3 t(2, 3, 4);
  t.at(1, 2, 3) = 7;
  EXPECT_EQ(t.at(1, 2, 3), 7);
  EXPECT_THROW((void)t.at(2, 0, 0), std::out_of_range);
  EXPECT_THROW((void)t.at(0, 3, 0), std::out_of_range);
  EXPECT_EQ(t.padded_at(0, -1, 0), 0);
  EXPECT_EQ(t.padded_at(0, 0, 4), 0);
  EXPECT_THROW(Tensor3(0, 1, 1), std::invalid_argument);

  Tensor4 f(2, 3, 1, 1);
  f.at(1, 2, 0, 0) = 5;
  EXPECT_EQ(f.at(1, 2, 0, 0), 5);
  EXPECT_THROW((void)f.at(2, 0, 0, 0), std::out_of_range);
}

TEST(Reference, HandComputedConv) {
  // 1x3x3 input, one 2x2 filter, stride 1, no padding.
  Layer layer = model::make_conv("c", 3, 3, 1, 2, 2, 1, 1, 0);
  LayerOperands ops;
  ops.ifmap = Tensor3(1, 3, 3);
  int v = 1;
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 3; ++x) {
      ops.ifmap.at(0, y, x) = v++;  // 1..9
    }
  }
  ops.filters = Tensor4(1, 1, 2, 2);
  ops.filters.at(0, 0, 0, 0) = 1;
  ops.filters.at(0, 0, 0, 1) = 0;
  ops.filters.at(0, 0, 1, 0) = 0;
  ops.filters.at(0, 0, 1, 1) = 1;
  const Tensor3 out = reference_forward(layer, ops);
  // out[y][x] = in[y][x] + in[y+1][x+1]
  EXPECT_EQ(out.at(0, 0, 0), 1 + 5);
  EXPECT_EQ(out.at(0, 0, 1), 2 + 6);
  EXPECT_EQ(out.at(0, 1, 0), 4 + 8);
  EXPECT_EQ(out.at(0, 1, 1), 5 + 9);
}

TEST(Reference, PaddingZeros) {
  Layer layer = model::make_conv("c", 2, 2, 1, 3, 3, 1, 1, 1);
  LayerOperands ops;
  ops.ifmap = Tensor3(1, 2, 2);
  ops.ifmap.at(0, 0, 0) = 1;
  ops.ifmap.at(0, 0, 1) = 2;
  ops.ifmap.at(0, 1, 0) = 3;
  ops.ifmap.at(0, 1, 1) = 4;
  ops.filters = Tensor4(1, 1, 3, 3);
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 3; ++x) {
      ops.filters.at(0, 0, y, x) = 1;  // box filter: sum of the 3x3 patch
    }
  }
  const Tensor3 out = reference_forward(layer, ops);
  EXPECT_EQ(out.at(0, 0, 0), 1 + 2 + 3 + 4);  // corners clipped to zero
  EXPECT_EQ(out.at(0, 1, 1), 1 + 2 + 3 + 4);
}

TEST(Reference, OperandShapeMismatchThrows) {
  Layer layer = model::make_conv("c", 4, 4, 2, 3, 3, 2, 1, 1);
  LayerOperands ops = random_operands(layer, 1);
  ops.ifmap = Tensor3(1, 4, 4);  // wrong channel count
  EXPECT_THROW((void)reference_forward(layer, ops), std::invalid_argument);
}

TEST(Reference, RandomOperandsAreDeterministic) {
  Layer layer = model::make_conv("c", 4, 4, 2, 3, 3, 2, 1, 1);
  const LayerOperands a = random_operands(layer, 42);
  const LayerOperands b = random_operands(layer, 42);
  EXPECT_EQ(a.ifmap, b.ifmap);
  const LayerOperands c = random_operands(layer, 43);
  EXPECT_NE(a.ifmap, c.ifmap);
}

// -------------------------------------------------------------------------
// Policy executors vs reference, parameterized over layer shapes.

using ShapeParam = std::tuple<int, int, int, int, int, LayerKind>;

Layer shape_layer(const ShapeParam& p) {
  const auto [hw, ci, nf, k, s, kind] = p;
  Layer::Params params;
  params.kind = kind;
  params.name = "grid";
  params.ifmap_h = params.ifmap_w = hw;
  params.channels = ci;
  params.filter_h = params.filter_w = (kind == LayerKind::kPointwise) ? 1 : k;
  params.filters = (kind == LayerKind::kDepthwise) ? ci : nf;
  params.stride = s;
  params.padding = (params.filter_h > 1) ? params.filter_h / 2 : 0;
  return Layer(params);
}

class PolicyExecTest : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(PolicyExecTest, AllPoliciesMatchReference) {
  const Layer layer = shape_layer(GetParam());
  const LayerOperands ops = random_operands(layer, 7);
  const Tensor3 expected = reference_forward(layer, ops);
  const int units = layer.is_depthwise() ? layer.channels() : layer.filters();

  std::vector<PolicyChoice> choices = {
      {.policy = Policy::kIntraLayer},
      {.policy = Policy::kIfmapReuse},
      {.policy = Policy::kFilterReuse},
      {.policy = Policy::kPerChannel},
  };
  for (int n : {1, 2, std::max(1, units / 2), units}) {
    if (n < 1 || n > units) {
      continue;
    }
    choices.push_back({.policy = Policy::kPartialIfmap, .filter_block = n});
    choices.push_back({.policy = Policy::kPartialPerChannel, .filter_block = n});
    for (int r : {1, 2, layer.ofmap_h()}) {
      if (r < 1 || r > layer.ofmap_h()) {
        continue;
      }
      choices.push_back({.policy = Policy::kFallbackTiled,
                         .filter_block = n,
                         .row_stripe = r});
    }
  }

  for (const PolicyChoice& choice : choices) {
    BufferPeaks peaks;
    const Tensor3 got = execute_policy(layer, choice, ops, &peaks);
    EXPECT_EQ(got, expected) << choice;

    // The staging buffers never exceed the closed-form footprint terms
    // (the accounting the planner trusts).
    const core::Footprint fp = core::working_footprint(layer, choice);
    EXPECT_LE(peaks.ifmap, fp.ifmap) << choice;
    EXPECT_LE(peaks.filter, fp.filter) << choice;
    EXPECT_LE(peaks.ofmap, fp.ofmap) << choice;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ConvShapes, PolicyExecTest,
    ::testing::Combine(::testing::Values(6, 9, 14),    // spatial
                       ::testing::Values(1, 3, 8),     // channels
                       ::testing::Values(1, 5, 12),    // filters
                       ::testing::Values(3, 5),        // kernel
                       ::testing::Values(1, 2),        // stride
                       ::testing::Values(LayerKind::kConv)));

INSTANTIATE_TEST_SUITE_P(
    DepthwiseShapes, PolicyExecTest,
    ::testing::Combine(::testing::Values(8, 13), ::testing::Values(4, 9),
                       ::testing::Values(1), ::testing::Values(3, 5),
                       ::testing::Values(1, 2),
                       ::testing::Values(LayerKind::kDepthwise)));

INSTANTIATE_TEST_SUITE_P(
    PointwiseShapes, PolicyExecTest,
    ::testing::Combine(::testing::Values(7, 10), ::testing::Values(3, 16),
                       ::testing::Values(4, 20), ::testing::Values(1),
                       ::testing::Values(1),
                       ::testing::Values(LayerKind::kPointwise)));

// Stride outruns the filter (1x1 s3): entire input rows/columns are never
// consumed — the policies must skip them and still compute correctly.
INSTANTIATE_TEST_SUITE_P(
    StrideSkipsRows, PolicyExecTest,
    ::testing::Combine(::testing::Values(10, 13), ::testing::Values(4),
                       ::testing::Values(6), ::testing::Values(1),
                       ::testing::Values(3),
                       ::testing::Values(LayerKind::kPointwise)));

TEST(PolicyExec, FullFootprintEqualityOnEvenBlocks) {
  // When the block divides the filter count, the staging buffers hit the
  // footprint terms exactly — the formulas are tight, not just safe.
  const Layer layer = model::make_conv("c", 9, 9, 4, 3, 3, 8, 1, 1);
  const LayerOperands ops = random_operands(layer, 3);
  const PolicyChoice p4{.policy = Policy::kPartialIfmap, .filter_block = 4};
  BufferPeaks peaks;
  (void)execute_policy(layer, p4, ops, &peaks);
  const core::Footprint fp = core::working_footprint(layer, p4);
  EXPECT_EQ(peaks.ifmap, fp.ifmap);
  EXPECT_EQ(peaks.filter, fp.filter);
  EXPECT_EQ(peaks.ofmap, fp.ofmap);
}

TEST(PolicyExec, InvalidParametersThrow) {
  const Layer layer = model::make_conv("c", 9, 9, 4, 3, 3, 8, 1, 1);
  const LayerOperands ops = random_operands(layer, 3);
  EXPECT_THROW((void)execute_policy(
                   layer, {.policy = Policy::kPartialIfmap, .filter_block = 0},
                   ops),
               std::invalid_argument);
  EXPECT_THROW((void)execute_policy(layer,
                                    {.policy = Policy::kFallbackTiled,
                                     .filter_block = 1,
                                     .row_stripe = 100},
                                    ops),
               std::invalid_argument);
}

TEST(PolicyExec, FullyConnectedAllPolicies) {
  const Layer fc = model::make_fully_connected("fc", 32, 17);
  const LayerOperands ops = random_operands(fc, 9);
  const Tensor3 expected = reference_forward(fc, ops);
  for (Policy p : core::kAllPolicies) {
    PolicyChoice choice{.policy = p, .filter_block = 4};
    if (p == Policy::kFallbackTiled) {
      choice.row_stripe = 1;
    }
    EXPECT_EQ(execute_policy(fc, choice, ops), expected) << core::to_string(p);
  }
}

}  // namespace
}  // namespace rainbow::ref
