// Planning-as-a-service, transport-free: protocol encode/decode contracts,
// registry semantics, and the service's headline guarantee — a daemon plan
// is byte-identical to the one-shot planner for every zoo model, both
// objectives, both schemes, and passes the validator and stream analyzer.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/eval_cache.hpp"
#include "core/manager.hpp"
#include "core/plan_io.hpp"
#include "model/parser.hpp"
#include "model/zoo/zoo.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"
#include "serve/service.hpp"

namespace rainbow::serve {
namespace {

// ------------------------------------------------------------ protocol ----

TEST(Protocol, RequestRoundTrip) {
  Request request;
  request.verb = "plan";
  request.headers["model"] = "resnet18";
  request.headers["glb_kb"] = "64";
  request.body = "not, a, real, model\n";
  const Request decoded = decode_request(encode_request(request));
  EXPECT_EQ(decoded.verb, "plan");
  EXPECT_EQ(decoded.headers, request.headers);
  EXPECT_EQ(decoded.body, request.body);
}

TEST(Protocol, ResponseRoundTrip) {
  Response response;
  response.headers["layers"] = "21";
  response.body = "plan text\nwith lines\n";
  const Response decoded = decode_response(encode_response(response));
  EXPECT_TRUE(decoded.ok);
  EXPECT_EQ(decoded.headers, response.headers);
  EXPECT_EQ(decoded.body, response.body);

  const Response err = decode_response(encode_response(
      Response::error("it broke")));
  EXPECT_FALSE(err.ok);
  EXPECT_EQ(err.get("message"), "it broke");
}

TEST(Protocol, EmptyBodyAndEmptyHeaders) {
  Request request;
  request.verb = "ping";
  const Request decoded = decode_request(encode_request(request));
  EXPECT_EQ(decoded.verb, "ping");
  EXPECT_TRUE(decoded.headers.empty());
  EXPECT_TRUE(decoded.body.empty());
}

TEST(Protocol, DecodeRejectsMalformedPayloads) {
  EXPECT_THROW(decode_request(""), std::runtime_error);
  EXPECT_THROW(decode_request("ping"), std::runtime_error);  // no newline
  EXPECT_THROW(decode_request("ping\n"), std::runtime_error);  // no blank
  EXPECT_THROW(decode_request("PING\n\n"), std::runtime_error);  // case
  EXPECT_THROW(decode_request("pl an\n\n"), std::runtime_error);
  EXPECT_THROW(decode_request("plan\nnospacehere\n\n"), std::runtime_error);
  EXPECT_THROW(decode_request("plan\n key value\n\n"), std::runtime_error);
  EXPECT_THROW(decode_request("plan\nmodel a\nmodel b\n\n"),
               std::runtime_error);  // duplicate header
  EXPECT_THROW(decode_response("maybe\n\n"), std::runtime_error);
}

TEST(Protocol, EncodeRejectsUnencodableMessages) {
  Request request;
  request.verb = "Plan";  // tokens are lowercase
  EXPECT_THROW(encode_request(request), std::runtime_error);
  request.verb = "plan";
  request.headers["model"] = "two\nlines";
  EXPECT_THROW(encode_request(request), std::runtime_error);
}

TEST(Protocol, TokenPredicate) {
  EXPECT_TRUE(is_token("plan"));
  EXPECT_TRUE(is_token("upload_spec"));
  EXPECT_TRUE(is_token("a1_2"));
  EXPECT_FALSE(is_token(""));
  EXPECT_FALSE(is_token("Plan"));
  EXPECT_FALSE(is_token("with space"));
  EXPECT_FALSE(is_token("dash-ed"));
  EXPECT_FALSE(is_token(std::string(65, 'a')));
}

// ------------------------------------------------------------ registry ----

TEST(Registry, RegisterFindEvict) {
  ModelRegistry registry;
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_EQ(registry.find("resnet18"), nullptr);
  EXPECT_TRUE(registry.register_model("MyNet",
                                      model::zoo::by_name("resnet18")));
  EXPECT_EQ(registry.size(), 1u);
  // Names are canonicalized to lowercase on every API path.
  const auto entry = registry.find("MYNET");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->network.size(), model::zoo::by_name("resnet18").size());
  EXPECT_FALSE(entry->builtin);
  EXPECT_EQ(registry.names(), std::vector<std::string>{"mynet"});
  EXPECT_TRUE(registry.evict("MyNet"));
  EXPECT_FALSE(registry.evict("mynet"));
  EXPECT_EQ(registry.size(), 0u);
}

TEST(Registry, ReplaceSemantics) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.register_model("m", model::zoo::by_name("resnet18")));
  const auto before = registry.find("m");
  // Same name without replace: refused, entry untouched.
  EXPECT_FALSE(registry.register_model("m",
                                       model::zoo::by_name("mobilenet")));
  EXPECT_EQ(registry.find("m"), before);
  // With replace: swapped, and the cache is a fresh object.
  EXPECT_TRUE(registry.register_model("m", model::zoo::by_name("mobilenet"),
                                      false, /*replace=*/true));
  const auto after = registry.find("m");
  ASSERT_NE(after, nullptr);
  EXPECT_NE(after, before);
  EXPECT_NE(after->cache, before->cache);
  EXPECT_EQ(after->network.size(), model::zoo::by_name("mobilenet").size());
}

TEST(Registry, EvictedEntryStaysValid) {
  ModelRegistry registry;
  registry.register_model("m", model::zoo::by_name("resnet18"));
  const auto held = registry.find("m");
  ASSERT_NE(held, nullptr);
  EXPECT_TRUE(registry.evict("m"));
  // A request that resolved the entry before eviction keeps planning
  // against it.
  EXPECT_EQ(held->network.size(), model::zoo::by_name("resnet18").size());
  EXPECT_NE(held->cache, nullptr);
}

TEST(Registry, PreloadZooAndCacheBytes) {
  ModelRegistry registry;
  registry.preload_zoo();
  EXPECT_EQ(registry.size(), model::zoo::model_names().size());
  for (const RegistrySnapshotRow& row : registry.rows()) {
    EXPECT_TRUE(row.builtin);
    EXPECT_EQ(row.plans_served, 0u);
  }
  EXPECT_EQ(registry.cache_bytes(), 0u);  // nothing planned yet
}

TEST(Registry, SpecRegistration) {
  ModelRegistry registry;
  EXPECT_TRUE(registry.register_spec("Edge", arch::paper_spec(64 * 1024)));
  EXPECT_FALSE(registry.register_spec("edge", arch::paper_spec(64 * 1024)));
  ASSERT_NE(registry.find_spec("EDGE"), nullptr);
  EXPECT_EQ(registry.find_spec("edge")->spec.glb_bytes, 64 * 1024);
  EXPECT_EQ(registry.spec_names(), std::vector<std::string>{"edge"});
  EXPECT_TRUE(registry.evict_spec("edge"));
  EXPECT_EQ(registry.find_spec("edge"), nullptr);
}

// ------------------------------------------------------------- service ----

Request plan_request(const std::string& model, const std::string& objective,
                     const std::string& scheme) {
  Request request;
  request.verb = "plan";
  request.headers["model"] = model;
  request.headers["objective"] = objective;
  request.headers["scheme"] = scheme;
  return request;
}

TEST(Service, PingAndUnknownVerb) {
  PlanningService service;
  Request ping;
  ping.verb = "ping";
  const Response pong = service.handle(ping);
  EXPECT_TRUE(pong.ok);
  EXPECT_EQ(pong.get("server"), "rainbowd");

  Request bogus;
  bogus.verb = "frobnicate";
  EXPECT_FALSE(service.handle(bogus).ok);
  EXPECT_EQ(service.stats().errors, 1u);
}

TEST(Service, UploadListEvict) {
  PlanningService service;
  Request upload;
  upload.verb = "upload";
  upload.body = model::serialize_network(model::zoo::by_name("mobilenet"));
  Response response = service.handle(upload);
  ASSERT_TRUE(response.ok) << response.get("message");
  // Name defaults to the network's own name, lowercased.
  EXPECT_EQ(response.get("model"), "mobilenet");

  // Re-upload without replace: refused; with replace: accepted.
  EXPECT_FALSE(service.handle(upload).ok);
  upload.headers["replace"] = "1";
  EXPECT_TRUE(service.handle(upload).ok);

  Request list;
  list.verb = "list";
  response = service.handle(list);
  ASSERT_TRUE(response.ok);
  EXPECT_EQ(response.get("models"), "1");
  EXPECT_NE(response.body.find("model, mobilenet"), std::string::npos);

  Request evict;
  evict.verb = "evict";
  evict.headers["model"] = "mobilenet";
  EXPECT_TRUE(service.handle(evict).ok);
  EXPECT_FALSE(service.handle(evict).ok);  // already gone
}

TEST(Service, UploadRejectsGarbage) {
  PlanningService service;
  Request upload;
  upload.verb = "upload";
  upload.body = "network, X\nCV, conv, not-a-number\n";
  const Response response = service.handle(upload);
  EXPECT_FALSE(response.ok);
  EXPECT_NE(response.get("message").find("line"), std::string::npos);
  EXPECT_EQ(service.registry().size(), 0u);
}

TEST(Service, PlanUnknownModel) {
  PlanningService service;
  const Response response =
      service.handle(plan_request("nosuch", "accesses", "het"));
  EXPECT_FALSE(response.ok);
  EXPECT_NE(response.get("message").find("unknown model"),
            std::string::npos);
}

TEST(Service, PlanRejectsBadHeaders) {
  PlanningService service({/*preload_zoo=*/true});
  EXPECT_FALSE(
      service.handle(plan_request("resnet18", "speed", "het")).ok);
  EXPECT_FALSE(
      service.handle(plan_request("resnet18", "accesses", "magic")).ok);
  Request bad_spec = plan_request("resnet18", "accesses", "het");
  bad_spec.headers["spec"] = "nosuchspec";
  EXPECT_FALSE(service.handle(bad_spec).ok);
  Request bad_bool = plan_request("resnet18", "accesses", "het");
  bad_bool.headers["interlayer"] = "maybe";
  EXPECT_FALSE(service.handle(bad_bool).ok);
}

// The headline guarantee: daemon plan bytes == one-shot planner bytes,
// for every zoo model x objective x scheme, on both a cold and a warm
// cache — and with validate+analyze gates on, the daemon's own validator
// and stream-analyzer passes are clean.
TEST(Service, PlanBytesMatchOneShotPlanner) {
  PlanningService service({/*preload_zoo=*/true});
  const arch::AcceleratorSpec spec = arch::paper_spec(64 * 1024);
  for (const std::string& name : model::zoo::model_names()) {
    const model::Network net = model::zoo::by_name(name);
    for (const std::string& objective : {"accesses", "latency"}) {
      for (const std::string& scheme : {"het", "hom"}) {
        core::ManagerOptions options;
        options.analyzer.eval_cache = std::make_shared<core::EvalCache>();
        const core::MemoryManager manager(spec, options);
        const core::Objective obj = objective == "latency"
                                        ? core::Objective::kLatency
                                        : core::Objective::kAccesses;
        const core::ExecutionPlan reference =
            scheme == "hom" ? manager.plan_homogeneous(net, obj)
                            : manager.plan(net, obj);
        const std::string expected = core::serialize_plan(reference);

        Request request = plan_request(name, objective, scheme);
        request.headers["validate"] = "1";
        request.headers["analyze"] = "1";
        const Response cold = service.handle(request);
        ASSERT_TRUE(cold.ok) << name << ": " << cold.get("message");
        EXPECT_EQ(cold.body, expected)
            << name << " " << objective << " " << scheme;
        // Warm re-plan: same bytes out of a now-populated cache.
        const Response warm = service.handle(request);
        ASSERT_TRUE(warm.ok);
        EXPECT_EQ(warm.body, expected);
      }
    }
  }
  EXPECT_EQ(service.stats().errors, 0u);
}

TEST(Service, NamedSpecAndOverridesChangeThePlan) {
  PlanningService service({/*preload_zoo=*/true});
  Request upload;
  upload.verb = "upload_spec";
  upload.headers["name"] = "big";
  upload.body = "spec, big\nglb_bytes, 1048576\n";
  ASSERT_TRUE(service.handle(upload).ok);

  const Response small =
      service.handle(plan_request("resnet18", "accesses", "het"));
  Request big_request = plan_request("resnet18", "accesses", "het");
  big_request.headers["spec"] = "big";
  const Response big = service.handle(big_request);
  ASSERT_TRUE(small.ok);
  ASSERT_TRUE(big.ok);
  // A 16x larger scratchpad must not produce the identical plan text.
  EXPECT_NE(small.body, big.body);

  // glb_kb override against the named spec matches the default paper spec
  // at the same size.
  big_request.headers["glb_kb"] = "64";
  const Response overridden = service.handle(big_request);
  ASSERT_TRUE(overridden.ok);
  EXPECT_EQ(overridden.body, small.body);
}

TEST(Service, ValidateAndAnalyzeRoundTrip) {
  PlanningService service({/*preload_zoo=*/true});
  const Response planned =
      service.handle(plan_request("mobilenet", "accesses", "het"));
  ASSERT_TRUE(planned.ok);

  Request validate;
  validate.verb = "validate";
  validate.headers["model"] = "mobilenet";
  validate.body = planned.body;
  const Response validated = service.handle(validate);
  EXPECT_TRUE(validated.ok) << validated.body;
  EXPECT_EQ(validated.get("errors"), "0");

  Request analyze;
  analyze.verb = "analyze";
  analyze.headers["model"] = "mobilenet";
  analyze.body = planned.body;
  const Response analyzed = service.handle(analyze);
  EXPECT_TRUE(analyzed.ok) << analyzed.body;
  EXPECT_EQ(analyzed.get("errors"), "0");

  // A corrupted plan body fails loudly instead of validating.
  validate.body = "plan, mobilenet, garbage\n";
  EXPECT_FALSE(service.handle(validate).ok);
}

TEST(Service, DseSweepOverGrid) {
  PlanningService service({/*preload_zoo=*/true});
  Request request;
  request.verb = "dse";
  request.headers["model"] = "resnet18";
  request.headers["glb_kb"] = "64,128";
  request.headers["width_bits"] = "8";
  request.headers["objective"] = "both";
  const Response response = service.handle(request);
  ASSERT_TRUE(response.ok) << response.get("message");
  EXPECT_EQ(response.get("points"), "4");  // 2 sizes x 1 width x 2 objectives
  EXPECT_NE(response.body.find("glb_kb"), std::string::npos);
}

TEST(Service, StatsTrackCachesAcrossRequests) {
  PlanningService service({/*preload_zoo=*/true});
  const Request request = plan_request("resnet18", "accesses", "het");
  ASSERT_TRUE(service.handle(request).ok);
  ASSERT_TRUE(service.handle(request).ok);

  Request stats;
  stats.verb = "stats";
  const Response response = service.handle(stats);
  ASSERT_TRUE(response.ok);
  EXPECT_EQ(response.get("plan_requests"), "2");
  EXPECT_GT(std::stoll(response.get("cache_hits")), 0);
  EXPECT_GT(std::stoll(response.get("cache_bytes")), 0);
  EXPECT_NE(response.body.find("resnet18"), std::string::npos);
}

}  // namespace
}  // namespace rainbow::serve
