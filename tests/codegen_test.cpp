// Tests for the command-stream backend: lowering conservation,
// interpreter/engine equivalence, stream validation, region hand-off for
// inter-layer reuse, and the printer.
#include <gtest/gtest.h>

#include "codegen/interpret.hpp"
#include "codegen/lower.hpp"
#include "codegen/print.hpp"
#include "core/manager.hpp"
#include "engine/engine.hpp"
#include "model/zoo/zoo.hpp"

namespace rainbow::codegen {
namespace {

using core::Objective;
using core::Policy;

arch::AcceleratorSpec spec_kb(count_t kb) { return arch::paper_spec(util::kib(kb)); }

core::LayerAssignment assignment_for(const model::Layer& layer,
                                     const arch::AcceleratorSpec& spec,
                                     Policy policy, bool prefetch) {
  core::LayerAssignment a;
  a.layer_index = 0;
  a.estimate = core::Estimator(spec).estimate(layer, policy, prefetch);
  return a;
}

TEST(Codegen, LayerProgramShape) {
  const auto spec = spec_kb(1024);
  const auto layer = model::make_conv("c", 14, 14, 32, 3, 3, 64, 1, 1);
  const auto program = lower_layer(
      layer, 0, assignment_for(layer, spec, Policy::kIfmapReuse, false));
  ASSERT_GE(program.commands.size(), 6u);
  EXPECT_EQ(program.commands[0].op, Command::Op::kAlloc);
  EXPECT_EQ(program.commands[1].op, Command::Op::kAlloc);
  EXPECT_EQ(program.commands[2].op, Command::Op::kAlloc);
  EXPECT_EQ(program.commands.back().op, Command::Op::kFree);
  // One barrier before the frees.
  bool saw_barrier = false;
  for (const Command& cmd : program.commands) {
    if (cmd.op == Command::Op::kBarrier) {
      saw_barrier = true;
    }
  }
  EXPECT_TRUE(saw_barrier);
}

TEST(Codegen, InterpreterMatchesEngineOnSingleLayers) {
  const auto spec = spec_kb(1024);
  const Interpreter interp(spec);
  const engine::Engine eng(spec);
  const auto layer = model::make_conv("c", 14, 14, 32, 3, 3, 64, 1, 1);
  for (Policy p : core::kAllPolicies) {
    for (bool prefetch : {false, true}) {
      const auto a = assignment_for(layer, spec, p, prefetch);
      if (!a.estimate.feasible) {
        continue;
      }
      Program program;
      program.spec = spec;
      program.layers.push_back(lower_layer(layer, 0, a));
      const ProgramRun run = interp.run(program);
      const auto exec = eng.execute_layer(layer, a.estimate.choice);
      EXPECT_EQ(run.total_accesses, exec.traffic.total())
          << core::to_string(p) << (prefetch ? "+p" : "");
      EXPECT_NEAR(run.total_latency_cycles, exec.latency_cycles,
                  1e-6 * exec.latency_cycles + 1e-9)
          << core::to_string(p) << (prefetch ? "+p" : "");
      EXPECT_EQ(run.layers[0].macs, layer.macs());
    }
  }
}

TEST(Codegen, FullPlanLowersAndRuns) {
  const auto spec = spec_kb(64);
  const core::MemoryManager manager(spec);
  const Interpreter interp(spec);
  for (const auto& net : {model::zoo::mobilenet(), model::zoo::resnet18()}) {
    const auto plan = manager.plan(net, Objective::kAccesses);
    const Program program = lower(plan, net);
    EXPECT_EQ(program.layers.size(), net.size());
    const ProgramRun run = interp.run(program);
    EXPECT_EQ(run.total_accesses, plan.total_accesses()) << net.name();
    // The whole stream stays within the physical scratchpad.
    EXPECT_LE(run.peak_glb_elems, spec.glb_elems()) << net.name();
  }
}

TEST(Codegen, InterlayerLinksHandOffRegions) {
  const auto spec = spec_kb(1024);
  core::ManagerOptions options;
  options.interlayer_reuse = true;
  const core::MemoryManager manager(spec, options);
  const auto net = model::zoo::mnasnet();
  const auto plan = manager.plan(net, Objective::kAccesses);
  ASSERT_GT(plan.interlayer_links(), 0u);
  const Program program = lower(plan, net);
  const ProgramRun run = Interpreter(spec).run(program);
  EXPECT_EQ(run.total_accesses, plan.total_accesses());
  // A linked consumer has no ifmap alloc and no ifmap loads.
  for (std::size_t i = 0; i < plan.size(); ++i) {
    if (!plan.assignment(i).ifmap_from_glb) {
      continue;
    }
    for (const Command& cmd : program.layers[i].commands) {
      if (cmd.kind == DataKind::kIfmap) {
        EXPECT_NE(cmd.op, Command::Op::kLoad) << "layer " << i;
        EXPECT_NE(cmd.op, Command::Op::kAlloc) << "layer " << i;
      }
    }
  }
}

TEST(Codegen, LowerRejectsMismatchedPlan) {
  const auto spec = spec_kb(64);
  const core::ExecutionPlan empty("x", "y", spec, Objective::kAccesses);
  EXPECT_THROW((void)lower(empty, model::zoo::mobilenet()),
               std::invalid_argument);
}

TEST(Codegen, InterpreterRejectsUseBeforeAlloc) {
  Program program;
  program.spec = spec_kb(64);
  LayerProgram layer;
  layer.layer_name = "bad";
  layer.commands.push_back({.op = Command::Op::kLoad,
                            .region = 0,
                            .kind = DataKind::kIfmap,
                            .elems = 10});
  program.layers.push_back(layer);
  EXPECT_THROW((void)Interpreter(spec_kb(64)).run(program), std::runtime_error);
}

TEST(Codegen, InterpreterRejectsDoubleAlloc) {
  Program program;
  program.spec = spec_kb(64);
  LayerProgram layer;
  layer.layer_name = "bad";
  layer.commands.push_back({.op = Command::Op::kAlloc,
                            .region = 0,
                            .kind = DataKind::kIfmap,
                            .elems = 10});
  layer.commands.push_back({.op = Command::Op::kAlloc,
                            .region = 0,
                            .kind = DataKind::kIfmap,
                            .elems = 10});
  program.layers.push_back(layer);
  EXPECT_THROW((void)Interpreter(spec_kb(64)).run(program), std::runtime_error);
}

TEST(Codegen, InterpreterRejectsOversizedFilterTransfer) {
  Program program;
  program.spec = spec_kb(64);
  LayerProgram layer;
  layer.layer_name = "bad";
  layer.commands.push_back({.op = Command::Op::kAlloc,
                            .region = 0,
                            .kind = DataKind::kFilter,
                            .elems = 10});
  layer.commands.push_back({.op = Command::Op::kLoad,
                            .region = 0,
                            .kind = DataKind::kFilter,
                            .elems = 100});
  layer.commands.push_back({.op = Command::Op::kFree,
                            .region = 0,
                            .kind = DataKind::kFilter,
                            .elems = 10});
  program.layers.push_back(layer);
  EXPECT_THROW((void)Interpreter(spec_kb(64)).run(program), std::runtime_error);
}

TEST(Codegen, InterpreterToleratesStreamingIfmapLoads) {
  // Ifmap loads are streams: they may exceed the retained window (padding
  // charge, stride > F_H) but never the scratchpad itself.
  Program program;
  program.spec = spec_kb(64);
  LayerProgram layer;
  layer.layer_name = "stream";
  layer.commands.push_back({.op = Command::Op::kAlloc,
                            .region = 0,
                            .kind = DataKind::kIfmap,
                            .elems = 10});
  layer.commands.push_back({.op = Command::Op::kLoad,
                            .region = 0,
                            .kind = DataKind::kIfmap,
                            .elems = 100});
  layer.commands.push_back({.op = Command::Op::kFree,
                            .region = 0,
                            .kind = DataKind::kIfmap,
                            .elems = 10});
  program.layers.push_back(layer);
  const auto run = Interpreter(spec_kb(64)).run(program);
  EXPECT_EQ(run.total_accesses, 100u);

  // ...but a stream larger than the whole GLB is a lowering bug.
  program.layers[0].commands[1].elems = 2 * util::kib(64);
  EXPECT_THROW((void)Interpreter(spec_kb(64)).run(program),
               std::runtime_error);
}

TEST(Codegen, InterpreterRejectsLeakedRegions) {
  Program program;
  program.spec = spec_kb(64);
  LayerProgram layer;
  layer.layer_name = "leaky";
  layer.commands.push_back({.op = Command::Op::kAlloc,
                            .region = 0,
                            .kind = DataKind::kIfmap,
                            .elems = 10});
  program.layers.push_back(layer);
  EXPECT_THROW((void)Interpreter(spec_kb(64)).run(program), std::runtime_error);
}

TEST(Codegen, InterpreterRejectsStoreFromNonOfmapRegion) {
  Program program;
  program.spec = spec_kb(64);
  LayerProgram layer;
  layer.layer_name = "bad";
  layer.commands.push_back({.op = Command::Op::kAlloc,
                            .region = 0,
                            .kind = DataKind::kFilter,
                            .elems = 10});
  layer.commands.push_back({.op = Command::Op::kStore,
                            .region = 0,
                            .kind = DataKind::kFilter,
                            .elems = 10});
  program.layers.push_back(layer);
  EXPECT_THROW((void)Interpreter(spec_kb(64)).run(program), std::runtime_error);
}

TEST(Codegen, InterpreterRejectsScratchpadExhaustion) {
  arch::AcceleratorSpec tiny = spec_kb(64);
  tiny.glb_bytes = 64;
  Program program;
  program.spec = tiny;
  LayerProgram layer;
  layer.layer_name = "big";
  layer.commands.push_back({.op = Command::Op::kAlloc,
                            .region = 0,
                            .kind = DataKind::kIfmap,
                            .elems = 1000});
  program.layers.push_back(layer);
  EXPECT_THROW((void)Interpreter(tiny).run(program), std::runtime_error);
}

TEST(Codegen, PrinterCompressesSteadyState) {
  const auto spec = spec_kb(1024);
  const auto layer = model::make_conv("c", 14, 14, 32, 3, 3, 64, 1, 1);
  Program program;
  program.model = "unit";
  program.spec = spec;
  program.layers.push_back(lower_layer(
      layer, 0, assignment_for(layer, spec, Policy::kIfmapReuse, false)));
  const std::string text = to_string(program);
  EXPECT_NE(text.find("program unit"), std::string::npos);
  EXPECT_NE(text.find("policy p1"), std::string::npos);
  // 13 identical steady-state tiles collapse into one repeat group.
  EXPECT_NE(text.find("x13 {"), std::string::npos);
  EXPECT_NE(text.find("alloc %0 ifmap"), std::string::npos);

  const std::string full =
      to_string(program, {.compress_loops = false});
  EXPECT_GT(full.size(), text.size());
}

TEST(Codegen, PrinterHonoursMaxLayers) {
  const auto spec = spec_kb(64);
  const core::MemoryManager manager(spec);
  const auto net = model::zoo::mobilenet();
  const Program program = lower(manager.plan(net, Objective::kAccesses), net);
  const std::string text =
      to_string(program, {.compress_loops = true, .max_layers = 2});
  EXPECT_NE(text.find("more layer(s)"), std::string::npos);
}

TEST(Codegen, CommandToString) {
  EXPECT_EQ(to_string(Command{.op = Command::Op::kCompute, .macs = 42}),
            "compute 42 macs");
  EXPECT_EQ(to_string(Command{.op = Command::Op::kLoad,
                              .region = 3,
                              .kind = DataKind::kFilter,
                              .elems = 7}),
            "load filter %3 7");
  EXPECT_EQ(to_string(Command{.op = Command::Op::kBarrier}), "barrier");
}

}  // namespace
}  // namespace rainbow::codegen
