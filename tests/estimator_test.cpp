// Unit tests for the estimation models: off-chip traffic per policy,
// latency (serialized and prefetch-overlapped), feasibility against the
// GLB, automatic tiling-parameter selection, and the inter-layer-reuse
// adjustments.
#include <gtest/gtest.h>

#include "arch/accelerator.hpp"
#include "core/estimator.hpp"
#include "model/layer.hpp"

namespace rainbow::core {
namespace {

using model::Layer;
using model::make_conv;
using model::make_depthwise;
using model::make_fully_connected;

Layer small_conv() { return make_conv("c", 14, 14, 32, 3, 3, 64, 1, 1); }

arch::AcceleratorSpec spec_kb(count_t kb) { return arch::paper_spec(util::kib(kb)); }

TEST(Estimator, MinimumTrafficPoliciesMoveEachElementOnce) {
  const Estimator est(spec_kb(1024));
  const Layer l = small_conv();
  const count_t compulsory =
      l.padded_ifmap_elems() + l.filter_elems() + l.ofmap_elems();
  for (Policy p : {Policy::kIntraLayer, Policy::kIfmapReuse,
                   Policy::kFilterReuse, Policy::kPerChannel}) {
    const Estimate e = est.estimate(l, p, /*prefetch=*/false);
    EXPECT_EQ(e.accesses(), compulsory) << to_string(p);
    EXPECT_EQ(e.traffic.ofmap_writes, l.ofmap_elems());
  }
}

TEST(Estimator, Policy4ReloadsIfmapPerFilterBlock) {
  const Estimator est(spec_kb(1024));
  const Layer l = small_conv();
  const PolicyChoice choice{.policy = Policy::kPartialIfmap, .filter_block = 16};
  const auto t = est.traffic(l, choice);
  // ceil(64 / 16) = 4 sweeps of the padded ifmap.
  EXPECT_EQ(t.ifmap_reads, l.padded_ifmap_elems() * 4);
  EXPECT_EQ(t.filter_reads, l.filter_elems());
}

TEST(Estimator, Policy5ReloadFactorRoundsUp) {
  const Estimator est(spec_kb(1024));
  const Layer l = small_conv();
  const PolicyChoice choice{.policy = Policy::kPartialPerChannel,
                            .filter_block = 24};
  const auto t = est.traffic(l, choice);
  // ceil(64 / 24) = 3.
  EXPECT_EQ(t.ifmap_reads, l.padded_ifmap_elems() * 3);
}

TEST(Estimator, DepthwiseNeverReloadsUnderPartialPolicies) {
  const Estimator est(spec_kb(1024));
  const Layer dw = make_depthwise("dw", 28, 28, 64, 3, 3, 1, 1);
  for (Policy p : {Policy::kPartialIfmap, Policy::kPartialPerChannel}) {
    const auto t = est.traffic(dw, PolicyChoice{.policy = p, .filter_block = 8});
    EXPECT_EQ(t.ifmap_reads, dw.padded_ifmap_elems()) << to_string(p);
  }
}

TEST(Estimator, UnpaddedTrafficOption) {
  const Estimator padded(spec_kb(1024), {.padded_traffic = true});
  const Estimator unpadded(spec_kb(1024), {.padded_traffic = false});
  const Layer l = small_conv();
  EXPECT_EQ(padded.ifmap_read_base(l), l.padded_ifmap_elems());
  EXPECT_EQ(unpadded.ifmap_read_base(l), l.ifmap_elems());
  EXPECT_LT(unpadded.estimate(l, Policy::kIntraLayer, false).accesses(),
            padded.estimate(l, Policy::kIntraLayer, false).accesses());
}

TEST(Estimator, ComputeCyclesFollowMacRate) {
  const Estimator est(spec_kb(1024));
  const Layer l = small_conv();
  EXPECT_DOUBLE_EQ(est.compute_cycles(l),
                   static_cast<double>(l.macs()) / 256.0);
}

TEST(Estimator, SerializedLatencyIsComputePlusTransfer) {
  const Estimator est(spec_kb(1024));
  const Layer l = small_conv();
  const Estimate e = est.estimate(l, Policy::kIntraLayer, /*prefetch=*/false);
  const double expected =
      est.compute_cycles(l) + static_cast<double>(e.accesses()) / 16.0;
  EXPECT_DOUBLE_EQ(e.latency_cycles, expected);
}

TEST(Estimator, PrefetchNeverSlower) {
  const Estimator est(spec_kb(1024));
  const Layer l = small_conv();
  for (Policy p : {Policy::kIntraLayer, Policy::kIfmapReuse,
                   Policy::kFilterReuse, Policy::kPerChannel,
                   Policy::kPartialIfmap, Policy::kPartialPerChannel}) {
    const Estimate serial = est.estimate(l, p, false);
    const Estimate overlap = est.estimate(l, p, true);
    EXPECT_LE(overlap.latency_cycles, serial.latency_cycles) << to_string(p);
    // Same traffic for the full-fit policies.
    if (p != Policy::kPartialIfmap && p != Policy::kPartialPerChannel) {
      EXPECT_EQ(overlap.accesses(), serial.accesses()) << to_string(p);
    }
  }
}

TEST(Estimator, PrefetchLatencyLowerBoundedByComputeAndTransfer) {
  const Estimator est(spec_kb(1024));
  const Layer l = small_conv();
  const Estimate e = est.estimate(l, Policy::kIfmapReuse, true);
  EXPECT_GE(e.latency_cycles, e.compute_cycles);
  EXPECT_GE(e.latency_cycles, static_cast<double>(e.accesses()) / 16.0);
}

TEST(Estimator, PrefetchDoublesFootprint) {
  const Estimator est(spec_kb(1024));
  const Layer l = small_conv();
  const Estimate serial = est.estimate(l, Policy::kFilterReuse, false);
  const Estimate overlap = est.estimate(l, Policy::kFilterReuse, true);
  EXPECT_EQ(overlap.memory_elems(), 2 * serial.memory_elems());
}

TEST(Estimator, FeasibilityAgainstGlb) {
  const Layer big = make_conv("big", 7, 7, 512, 3, 3, 512, 1, 1);
  // Intra-layer needs ~2.3 MB; infeasible at 64 kB, feasible at 4 MB.
  EXPECT_FALSE(
      Estimator(spec_kb(64)).estimate(big, Policy::kIntraLayer, false).feasible);
  EXPECT_TRUE(
      Estimator(spec_kb(4096)).estimate(big, Policy::kIntraLayer, false).feasible);
}

TEST(Estimator, AutoFilterBlockIsMaximalFeasible) {
  const Estimator est(spec_kb(64));
  const Layer big = make_conv("big", 7, 7, 512, 3, 3, 512, 1, 1);
  const Estimate e = est.estimate(big, Policy::kPartialIfmap, false);
  ASSERT_TRUE(e.feasible);
  const int n = e.choice.filter_block;
  EXPECT_GE(n, 1);
  // n is feasible but n+1 is not (or n is at its upper bound F#-1).
  EXPECT_LE(planned_footprint(big, e.choice).total(), est.spec().glb_elems());
  if (n < big.filters() - 1) {
    PolicyChoice next = e.choice;
    next.filter_block = n + 1;
    EXPECT_GT(planned_footprint(big, next).total(), est.spec().glb_elems());
  }
}

TEST(Estimator, LargerBlocksMeanFewerAccesses) {
  // More GLB -> larger feasible filter block -> fewer ifmap re-loads.
  const Layer big = make_conv("big", 14, 14, 256, 3, 3, 512, 1, 1);
  const Estimate small =
      Estimator(spec_kb(64)).estimate(big, Policy::kPartialIfmap, false);
  const Estimate large =
      Estimator(spec_kb(512)).estimate(big, Policy::kPartialIfmap, false);
  ASSERT_TRUE(small.feasible);
  ASSERT_TRUE(large.feasible);
  EXPECT_GE(large.choice.filter_block, small.choice.filter_block);
  EXPECT_LE(large.accesses(), small.accesses());
}

TEST(Estimator, InfeasiblePolicyReportsItself) {
  // A 1 kB GLB cannot even hold one sliding window of this layer.
  arch::AcceleratorSpec tiny = spec_kb(64);
  tiny.glb_bytes = 1024;
  const Estimator est(tiny);
  const Layer l = make_conv("c", 224, 224, 64, 3, 3, 64, 1, 1);
  EXPECT_FALSE(est.estimate(l, Policy::kIfmapReuse, false).feasible);
  EXPECT_FALSE(est.estimate(l, Policy::kPartialIfmap, false).feasible);
}

TEST(Estimator, FallbackSelectsFeasibleTiling) {
  const Estimator est(spec_kb(64));
  const Layer big = make_conv("big", 56, 56, 64, 3, 3, 192, 1, 1);
  const Estimate e = est.estimate(big, Policy::kFallbackTiled, false);
  ASSERT_TRUE(e.feasible);
  EXPECT_GE(e.choice.row_stripe, 1);
  EXPECT_GE(e.choice.filter_block, 1);
  // Fallback pays re-load cost: never cheaper than the compulsory minimum.
  const count_t compulsory =
      big.padded_ifmap_elems() + big.filter_elems() + big.ofmap_elems();
  EXPECT_GE(e.accesses(), compulsory);
}

TEST(Estimator, FallbackPrefersCheaperTiling) {
  // With a roomier GLB the fallback tiler must find a tiling no worse than
  // with a cramped one.
  const Layer big = make_conv("big", 56, 56, 64, 3, 3, 192, 1, 1);
  const Estimate cramped =
      Estimator(spec_kb(64)).estimate(big, Policy::kFallbackTiled, false);
  const Estimate roomy =
      Estimator(spec_kb(512)).estimate(big, Policy::kFallbackTiled, false);
  ASSERT_TRUE(cramped.feasible);
  ASSERT_TRUE(roomy.feasible);
  EXPECT_LE(roomy.accesses(), cramped.accesses());
}

TEST(Estimator, InterlayerResidentIfmapDropsReads) {
  const Estimator est(spec_kb(1024));
  const Layer l = small_conv();
  const InterlayerAdjust adjust{.ifmap_resident = true};
  const Estimate e = est.estimate(l, Policy::kFilterReuse, false, adjust);
  EXPECT_EQ(e.traffic.ifmap_reads, 0u);
  EXPECT_EQ(e.traffic.filter_reads, l.filter_elems());
  // Footprint still reserves the resident map.
  EXPECT_EQ(e.footprint.ifmap, l.ifmap_elems());
}

TEST(Estimator, InterlayerKeepOfmapDropsWrites) {
  const Estimator est(spec_kb(1024));
  const Layer l = small_conv();
  const InterlayerAdjust adjust{.keep_ofmap = true};
  const Estimate e = est.estimate(l, Policy::kIfmapReuse, false, adjust);
  EXPECT_EQ(e.traffic.ofmap_writes, 0u);
  EXPECT_EQ(e.footprint.ofmap, l.ofmap_elems());
}

TEST(Estimator, InterlayerResidencyIsNotDoubledByPrefetch) {
  const Estimator est(spec_kb(1024));
  const Layer l = small_conv();
  const InterlayerAdjust adjust{.ifmap_resident = true, .keep_ofmap = true};
  const Estimate e = est.estimate(l, Policy::kIfmapReuse, true, adjust);
  EXPECT_EQ(e.footprint.ifmap, l.ifmap_elems());       // single copy
  EXPECT_EQ(e.footprint.ofmap, l.ofmap_elems());       // single copy
  const Footprint working = working_footprint(l, {.policy = Policy::kIfmapReuse});
  EXPECT_EQ(e.footprint.filter, 2 * working.filter);   // streamed: doubled
}

TEST(Estimator, InterlayerBothEndsLeaveOnlyFilterTraffic) {
  const Estimator est(spec_kb(1024));
  const Layer l = small_conv();
  const InterlayerAdjust adjust{.ifmap_resident = true, .keep_ofmap = true};
  const Estimate e = est.estimate(l, Policy::kIntraLayer, false, adjust);
  EXPECT_EQ(e.accesses(), l.filter_elems());
}

TEST(Estimator, BatchMustBePositive) {
  EXPECT_THROW(Estimator(spec_kb(64), {.batch = 0}), std::invalid_argument);
  EXPECT_THROW(Estimator(spec_kb(64), {.batch = -3}), std::invalid_argument);
}

TEST(Estimator, BatchScalesActivationsAlways) {
  const Layer l = small_conv();
  const Estimator b1(spec_kb(1024), {.batch = 1});
  const Estimator b8(spec_kb(1024), {.batch = 8});
  for (Policy p : kAllPolicies) {
    const auto t1 = b1.estimate(l, p, false).traffic;
    const auto t8 = b8.estimate(l, p, false).traffic;
    EXPECT_EQ(t8.ifmap_reads, 8 * t1.ifmap_reads) << to_string(p);
    EXPECT_EQ(t8.ofmap_writes, 8 * t1.ofmap_writes) << to_string(p);
  }
}

TEST(Estimator, BatchAmortizesResidentFilterPolicies) {
  const Layer l = small_conv();
  const Estimator b1(spec_kb(1024), {.batch = 1});
  const Estimator b8(spec_kb(1024), {.batch = 8});
  for (Policy p : {Policy::kIntraLayer, Policy::kIfmapReuse,
                   Policy::kPartialIfmap}) {
    EXPECT_EQ(b8.estimate(l, p, false).traffic.filter_reads,
              b1.estimate(l, p, false).traffic.filter_reads)
        << to_string(p);
  }
  for (Policy p : {Policy::kFilterReuse, Policy::kPerChannel,
                   Policy::kPartialPerChannel}) {
    EXPECT_EQ(b8.estimate(l, p, false).traffic.filter_reads,
              8 * b1.estimate(l, p, false).traffic.filter_reads)
        << to_string(p);
  }
}

TEST(Estimator, BatchDoesNotGrowFootprints) {
  const Layer l = small_conv();
  const Estimator b1(spec_kb(1024), {.batch = 1});
  const Estimator b8(spec_kb(1024), {.batch = 8});
  for (Policy p : kAllPolicies) {
    EXPECT_EQ(b8.estimate(l, p, false).memory_elems(),
              b1.estimate(l, p, false).memory_elems())
        << to_string(p);
  }
}

TEST(Estimator, BatchScalesComputeLinearly) {
  const Layer l = small_conv();
  const Estimator b1(spec_kb(1024), {.batch = 1});
  const Estimator b4(spec_kb(1024), {.batch = 4});
  EXPECT_DOUBLE_EQ(b4.compute_cycles(l), 4.0 * b1.compute_cycles(l));
}

TEST(Estimator, BatchFlipsThePreferredPolicyOnDenseLayers) {
  // A dense layer is weight-dominated: per image, P2 (whole input vector
  // resident) and P1 (all weights resident) tie at batch 1, but at batch
  // 16 the weight-amortizing policy must win the accesses objective.
  const Layer fc = make_fully_connected("fc", 2048, 1024);
  const Estimator b16(arch::paper_spec(util::mib(8)), {.batch = 16});
  const auto p1 = b16.estimate(fc, Policy::kIfmapReuse, false);
  const auto p2 = b16.estimate(fc, Policy::kFilterReuse, false);
  EXPECT_LT(p1.accesses(), p2.accesses());
  // Per-image amortized traffic approaches ifmap + ofmap + filters/16.
  const count_t per_image = p1.accesses() / 16;
  EXPECT_LT(per_image, fc.filter_elems() / 8);
}

TEST(Estimator, FullyConnectedPolicies) {
  const Estimator est(spec_kb(1024));
  const Layer fc = make_fully_connected("fc", 512, 1000);
  const count_t compulsory = 512 + 512 * 1000 + 1000;
  for (Policy p : {Policy::kIntraLayer, Policy::kIfmapReuse,
                   Policy::kFilterReuse, Policy::kPerChannel}) {
    EXPECT_EQ(est.estimate(fc, p, false).accesses(), compulsory)
        << to_string(p);
  }
}

}  // namespace
}  // namespace rainbow::core
