// Overflow-edge coverage: shapes whose closed forms wrap uint64 must be
// reported as clean diagnostics (validator V014 / lint L005), never as
// silently wrapped numbers.  In RAINBOW_CHECKED builds the instrumented hot
// paths themselves throw OverflowError; in unchecked builds they keep their
// wrapping (and fast) arithmetic, which is exactly why the validator and
// linter always re-derive with checked math.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "core/estimator.hpp"
#include "core/footprint.hpp"
#include "core/plan.hpp"
#include "model/parser.hpp"
#include "scalesim/systolic.hpp"
#include "util/checked.hpp"
#include "validate/lint.hpp"
#include "validate/plan_validator.hpp"

namespace rainbow {
namespace {

constexpr count_t kMax = std::numeric_limits<count_t>::max();

// MACs ~ 1.4e20 > 2^64-1 ~ 1.8e19, while the per-tensor volumes still fit:
// only the deepest closed form wraps.
model::Network macs_overflow_net() {
  return model::parse_network(
      "network, huge\n"
      "CV, blowup, 2000000, 2000000, 2000, 3, 3, 2000, 1, 1\n");
}

// ifmap volume alone ~ 8e21: even the first accessor wraps.
model::Network volume_overflow_net() {
  return model::parse_network(
      "network, huger\n"
      "CV, blowup, 2000000000, 2000000000, 2000, 3, 3, 2000, 1, 1\n");
}

TEST(CheckedMath, ExplicitHelpersAlwaysThrow) {
  EXPECT_EQ(util::checked_mul(count_t{3}, count_t{7}), 21u);
  EXPECT_EQ(util::checked_add(kMax - 1, count_t{1}), kMax);
  EXPECT_THROW((void)util::checked_mul(kMax / 2 + 1, count_t{2}),
               util::OverflowError);
  EXPECT_THROW((void)util::checked_add(kMax, count_t{1}),
               util::OverflowError);
  // Near-INT64_MAX products that fit uint64 must not be rejected.
  const count_t i64max = static_cast<count_t>(
      std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(util::checked_mul(i64max, count_t{2}), i64max * 2);
}

TEST(CheckedMath, HotPathHelpersMatchBuildMode) {
  if constexpr (util::kCheckedBuild) {
    EXPECT_THROW((void)util::cmul(kMax / 2 + 1, count_t{2}),
                 util::OverflowError);
    EXPECT_THROW((void)util::cadd(kMax, count_t{1}), util::OverflowError);
  } else {
    // Unchecked builds keep two's-complement wrapping — bit-identical to
    // the pre-instrumentation arithmetic.
    EXPECT_EQ(util::cmul(kMax / 2 + 1, count_t{2}), count_t{0});
    EXPECT_EQ(util::cadd(kMax, count_t{1}), count_t{0});
  }
}

TEST(OverflowEdge, InstrumentedHotPathsFollowBuildMode) {
  const model::Network macs_net = macs_overflow_net();
  const model::Network vol_net = volume_overflow_net();
  const model::Layer& macs_layer = macs_net.layer(0);
  const model::Layer& vol_layer = vol_net.layer(0);
  [[maybe_unused]] const auto spec = arch::paper_spec(util::kib(256));
  const core::PolicyChoice intra{};  // kIntraLayer, no prefetch
#ifdef RAINBOW_CHECKED
  EXPECT_THROW((void)macs_layer.macs(), util::OverflowError);
  EXPECT_THROW((void)vol_layer.ifmap_elems(), util::OverflowError);
  EXPECT_THROW((void)core::working_footprint(vol_layer, intra),
               util::OverflowError);
  EXPECT_THROW((void)core::Estimator(spec).estimate(
                   macs_layer, core::Policy::kIntraLayer, false),
               util::OverflowError);
  EXPECT_THROW((void)scalesim::fold_geometry(vol_layer, spec).folds(),
               util::OverflowError);
#else
  // Wraps silently; the point of V014/L005 is that nothing downstream
  // trusts these numbers without the validator.
  EXPECT_NO_THROW((void)macs_layer.macs());
  EXPECT_NO_THROW((void)core::working_footprint(vol_layer, intra));
#endif
}

TEST(OverflowEdge, ValidatorReportsV014NotWrappedAgreement) {
  const auto net = macs_overflow_net();
  const auto spec = arch::paper_spec(util::kib(1024));
  core::ExecutionPlan plan("het", net.name(), spec,
                           core::Objective::kAccesses);
  core::LayerAssignment a;
  a.layer_index = 0;
  a.estimate.feasible = true;
  plan.add(a);
  const auto report =
      validate::PlanValidator(validate::ValidatorOptions{}).validate(plan, net);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(validate::Code::kArithmeticOverflow))
      << report.summary();
  // Overflow preempts every downstream comparison for the layer: no bogus
  // footprint/traffic diagnostics derived from wrapped numbers.
  EXPECT_EQ(report.error_count(),
            report.count(validate::Code::kArithmeticOverflow));
}

TEST(OverflowEdge, LintReportsL005) {
  const auto report = validate::lint_model_text(
      "network, huge\n"
      "CV, blowup, 2000000, 2000000, 2000, 3, 3, 2000, 1, 1\n");
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(validate::Code::kModelOverflow)) << report.summary();
}

}  // namespace
}  // namespace rainbow
