// Unit tests for the inter-layer reuse pass (Section 5.4).
#include <gtest/gtest.h>

#include "core/interlayer.hpp"
#include "model/zoo/zoo.hpp"

namespace rainbow::core {
namespace {

using model::Network;
using model::make_conv;
using model::make_projection;

arch::AcceleratorSpec spec_kb(count_t kb) { return arch::paper_spec(util::kib(kb)); }

Network small_chain() {
  Network net("chain");
  net.add(make_conv("a", 14, 14, 16, 3, 3, 16, 1, 1));
  net.add(make_conv("b", 14, 14, 16, 3, 3, 16, 1, 1));
  net.add(make_conv("c", 14, 14, 16, 3, 3, 16, 1, 1));
  return net;
}

TEST(Interlayer, LinksSmallChainsCompletely) {
  // All three ofmaps are ~3 kB: at 64 kB everything links.
  const Analyzer analyzer(spec_kb(64));
  const Network net = small_chain();
  const ExecutionPlan base = analyzer.heterogeneous(net, Objective::kAccesses);
  const ExecutionPlan linked = apply_interlayer_reuse(base, net, analyzer);
  EXPECT_EQ(linked.interlayer_links(), 2u);
  EXPECT_DOUBLE_EQ(linked.interlayer_coverage(sequential_boundaries(net)), 1.0);
}

TEST(Interlayer, ReducesAccessesByTheLinkedVolumes) {
  const Analyzer analyzer(spec_kb(64));
  const Network net = small_chain();
  const ExecutionPlan base = analyzer.heterogeneous(net, Objective::kAccesses);
  const ExecutionPlan linked = apply_interlayer_reuse(base, net, analyzer);
  EXPECT_LT(linked.total_accesses(), base.total_accesses());
  // Middle layer reads and writes on-chip only: its traffic is filters-only.
  const Estimate& mid = linked.assignment(1).estimate;
  EXPECT_EQ(mid.traffic.ifmap_reads, 0u);
  EXPECT_EQ(mid.traffic.ofmap_writes, 0u);
  EXPECT_EQ(mid.accesses(), net.layer(1).filter_elems());
}

TEST(Interlayer, NeverRegressesTheObjective) {
  for (count_t kb : {64u, 128u, 512u}) {
    const Analyzer analyzer(spec_kb(kb));
    const Network net = model::zoo::mobilenet();
    const ExecutionPlan base = analyzer.heterogeneous(net, Objective::kAccesses);
    const ExecutionPlan linked = apply_interlayer_reuse(base, net, analyzer);
    EXPECT_LE(linked.total_accesses(), base.total_accesses()) << kb;
  }
}

TEST(Interlayer, RequiresResidentOfmapToFit) {
  // conv1 of MobileNet produces a 112x112x32 = 392 kB ofmap; a 64 kB GLB
  // cannot link that boundary.
  const Analyzer analyzer(spec_kb(64));
  const Network net = model::zoo::mobilenet();
  const ExecutionPlan base = analyzer.heterogeneous(net, Objective::kAccesses);
  const ExecutionPlan linked = apply_interlayer_reuse(base, net, analyzer);
  EXPECT_FALSE(linked.assignment(0).ofmap_stays_in_glb);
  EXPECT_FALSE(linked.assignment(1).ifmap_from_glb);
}

TEST(Interlayer, CoverageGrowsWithGlb) {
  const Network net = model::zoo::mnasnet();
  const std::size_t boundaries = sequential_boundaries(net);
  double prev = -1.0;
  for (count_t kb : {64u, 128u, 256u, 512u, 1024u}) {
    const Analyzer analyzer(spec_kb(kb));
    const ExecutionPlan base = analyzer.heterogeneous(net, Objective::kAccesses);
    const ExecutionPlan linked = apply_interlayer_reuse(base, net, analyzer);
    const double coverage = linked.interlayer_coverage(boundaries);
    EXPECT_GE(coverage, prev) << kb << " kB";
    prev = coverage;
  }
  // At 1 MB nearly all boundaries link (the paper reports 98%).
  EXPECT_GE(prev, 0.85);
}

TEST(Interlayer, SkipsBranchBoundaries) {
  Network net("branchy");
  net.add(make_conv("a", 14, 14, 16, 3, 3, 16, 1, 1));
  net.add(make_conv("b", 14, 14, 16, 3, 3, 16, 1, 1));
  net.add_branch(make_projection("p", 14, 14, 16, 16, 1), 0);
  const Analyzer analyzer(spec_kb(64));
  const ExecutionPlan base = analyzer.heterogeneous(net, Objective::kAccesses);
  const ExecutionPlan linked = apply_interlayer_reuse(base, net, analyzer);
  // b -> p is a branch boundary (p reads a's output): must not link.
  EXPECT_FALSE(linked.assignment(1).ofmap_stays_in_glb);
  EXPECT_FALSE(linked.assignment(2).ifmap_from_glb);
  // a -> b can link.
  EXPECT_TRUE(linked.assignment(0).ofmap_stays_in_glb);
}

TEST(Interlayer, PlanNetworkMismatchThrows) {
  const Analyzer analyzer(spec_kb(64));
  const Network net = small_chain();
  ExecutionPlan wrong("x", "y", spec_kb(64), Objective::kAccesses);
  EXPECT_THROW(apply_interlayer_reuse(wrong, net, analyzer),
               std::invalid_argument);
}

TEST(Interlayer, ChainResidencyIsConsistent) {
  // When both boundaries of a middle layer link, its footprint must hold
  // both resident maps simultaneously and still fit.
  const Analyzer analyzer(spec_kb(64));
  const Network net = small_chain();
  const ExecutionPlan linked = apply_interlayer_reuse(
      analyzer.heterogeneous(net, Objective::kAccesses), net, analyzer);
  const LayerAssignment& mid = linked.assignment(1);
  ASSERT_TRUE(mid.ifmap_from_glb);
  ASSERT_TRUE(mid.ofmap_stays_in_glb);
  EXPECT_GE(mid.estimate.footprint.ifmap, net.layer(1).ifmap_elems());
  EXPECT_GE(mid.estimate.footprint.ofmap, net.layer(1).ofmap_elems());
  EXPECT_LE(mid.estimate.memory_elems(), util::kib(64));
}

}  // namespace
}  // namespace rainbow::core
