# Empty compiler generated dependencies file for rainbow_verify.
# This may be replaced when dependencies are built.
