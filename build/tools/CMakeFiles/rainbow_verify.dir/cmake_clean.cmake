file(REMOVE_RECURSE
  "CMakeFiles/rainbow_verify.dir/rainbow_verify.cpp.o"
  "CMakeFiles/rainbow_verify.dir/rainbow_verify.cpp.o.d"
  "rainbow_verify"
  "rainbow_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rainbow_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
