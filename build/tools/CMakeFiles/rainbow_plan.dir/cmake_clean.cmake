file(REMOVE_RECURSE
  "CMakeFiles/rainbow_plan.dir/rainbow_plan.cpp.o"
  "CMakeFiles/rainbow_plan.dir/rainbow_plan.cpp.o.d"
  "rainbow_plan"
  "rainbow_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rainbow_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
