# Empty dependencies file for rainbow_plan.
# This may be replaced when dependencies are built.
