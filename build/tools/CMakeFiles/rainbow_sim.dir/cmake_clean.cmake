file(REMOVE_RECURSE
  "CMakeFiles/rainbow_sim.dir/rainbow_sim.cpp.o"
  "CMakeFiles/rainbow_sim.dir/rainbow_sim.cpp.o.d"
  "rainbow_sim"
  "rainbow_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rainbow_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
