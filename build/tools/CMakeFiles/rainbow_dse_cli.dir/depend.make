# Empty dependencies file for rainbow_dse_cli.
# This may be replaced when dependencies are built.
