file(REMOVE_RECURSE
  "CMakeFiles/rainbow_dse_cli.dir/rainbow_dse.cpp.o"
  "CMakeFiles/rainbow_dse_cli.dir/rainbow_dse.cpp.o.d"
  "rainbow_dse"
  "rainbow_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rainbow_dse_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
