file(REMOVE_RECURSE
  "librainbow_model.a"
)
