
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/layer.cpp" "src/CMakeFiles/rainbow_model.dir/model/layer.cpp.o" "gcc" "src/CMakeFiles/rainbow_model.dir/model/layer.cpp.o.d"
  "/root/repo/src/model/network.cpp" "src/CMakeFiles/rainbow_model.dir/model/network.cpp.o" "gcc" "src/CMakeFiles/rainbow_model.dir/model/network.cpp.o.d"
  "/root/repo/src/model/parser.cpp" "src/CMakeFiles/rainbow_model.dir/model/parser.cpp.o" "gcc" "src/CMakeFiles/rainbow_model.dir/model/parser.cpp.o.d"
  "/root/repo/src/model/random.cpp" "src/CMakeFiles/rainbow_model.dir/model/random.cpp.o" "gcc" "src/CMakeFiles/rainbow_model.dir/model/random.cpp.o.d"
  "/root/repo/src/model/summary.cpp" "src/CMakeFiles/rainbow_model.dir/model/summary.cpp.o" "gcc" "src/CMakeFiles/rainbow_model.dir/model/summary.cpp.o.d"
  "/root/repo/src/model/zoo/builders.cpp" "src/CMakeFiles/rainbow_model.dir/model/zoo/builders.cpp.o" "gcc" "src/CMakeFiles/rainbow_model.dir/model/zoo/builders.cpp.o.d"
  "/root/repo/src/model/zoo/efficientnetb0.cpp" "src/CMakeFiles/rainbow_model.dir/model/zoo/efficientnetb0.cpp.o" "gcc" "src/CMakeFiles/rainbow_model.dir/model/zoo/efficientnetb0.cpp.o.d"
  "/root/repo/src/model/zoo/extra.cpp" "src/CMakeFiles/rainbow_model.dir/model/zoo/extra.cpp.o" "gcc" "src/CMakeFiles/rainbow_model.dir/model/zoo/extra.cpp.o.d"
  "/root/repo/src/model/zoo/googlenet.cpp" "src/CMakeFiles/rainbow_model.dir/model/zoo/googlenet.cpp.o" "gcc" "src/CMakeFiles/rainbow_model.dir/model/zoo/googlenet.cpp.o.d"
  "/root/repo/src/model/zoo/mnasnet.cpp" "src/CMakeFiles/rainbow_model.dir/model/zoo/mnasnet.cpp.o" "gcc" "src/CMakeFiles/rainbow_model.dir/model/zoo/mnasnet.cpp.o.d"
  "/root/repo/src/model/zoo/mobilenet.cpp" "src/CMakeFiles/rainbow_model.dir/model/zoo/mobilenet.cpp.o" "gcc" "src/CMakeFiles/rainbow_model.dir/model/zoo/mobilenet.cpp.o.d"
  "/root/repo/src/model/zoo/mobilenetv2.cpp" "src/CMakeFiles/rainbow_model.dir/model/zoo/mobilenetv2.cpp.o" "gcc" "src/CMakeFiles/rainbow_model.dir/model/zoo/mobilenetv2.cpp.o.d"
  "/root/repo/src/model/zoo/resnet18.cpp" "src/CMakeFiles/rainbow_model.dir/model/zoo/resnet18.cpp.o" "gcc" "src/CMakeFiles/rainbow_model.dir/model/zoo/resnet18.cpp.o.d"
  "/root/repo/src/model/zoo/zoo.cpp" "src/CMakeFiles/rainbow_model.dir/model/zoo/zoo.cpp.o" "gcc" "src/CMakeFiles/rainbow_model.dir/model/zoo/zoo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rainbow_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
