# Empty compiler generated dependencies file for rainbow_model.
# This may be replaced when dependencies are built.
