file(REMOVE_RECURSE
  "CMakeFiles/rainbow_model.dir/model/layer.cpp.o"
  "CMakeFiles/rainbow_model.dir/model/layer.cpp.o.d"
  "CMakeFiles/rainbow_model.dir/model/network.cpp.o"
  "CMakeFiles/rainbow_model.dir/model/network.cpp.o.d"
  "CMakeFiles/rainbow_model.dir/model/parser.cpp.o"
  "CMakeFiles/rainbow_model.dir/model/parser.cpp.o.d"
  "CMakeFiles/rainbow_model.dir/model/random.cpp.o"
  "CMakeFiles/rainbow_model.dir/model/random.cpp.o.d"
  "CMakeFiles/rainbow_model.dir/model/summary.cpp.o"
  "CMakeFiles/rainbow_model.dir/model/summary.cpp.o.d"
  "CMakeFiles/rainbow_model.dir/model/zoo/builders.cpp.o"
  "CMakeFiles/rainbow_model.dir/model/zoo/builders.cpp.o.d"
  "CMakeFiles/rainbow_model.dir/model/zoo/efficientnetb0.cpp.o"
  "CMakeFiles/rainbow_model.dir/model/zoo/efficientnetb0.cpp.o.d"
  "CMakeFiles/rainbow_model.dir/model/zoo/extra.cpp.o"
  "CMakeFiles/rainbow_model.dir/model/zoo/extra.cpp.o.d"
  "CMakeFiles/rainbow_model.dir/model/zoo/googlenet.cpp.o"
  "CMakeFiles/rainbow_model.dir/model/zoo/googlenet.cpp.o.d"
  "CMakeFiles/rainbow_model.dir/model/zoo/mnasnet.cpp.o"
  "CMakeFiles/rainbow_model.dir/model/zoo/mnasnet.cpp.o.d"
  "CMakeFiles/rainbow_model.dir/model/zoo/mobilenet.cpp.o"
  "CMakeFiles/rainbow_model.dir/model/zoo/mobilenet.cpp.o.d"
  "CMakeFiles/rainbow_model.dir/model/zoo/mobilenetv2.cpp.o"
  "CMakeFiles/rainbow_model.dir/model/zoo/mobilenetv2.cpp.o.d"
  "CMakeFiles/rainbow_model.dir/model/zoo/resnet18.cpp.o"
  "CMakeFiles/rainbow_model.dir/model/zoo/resnet18.cpp.o.d"
  "CMakeFiles/rainbow_model.dir/model/zoo/zoo.cpp.o"
  "CMakeFiles/rainbow_model.dir/model/zoo/zoo.cpp.o.d"
  "librainbow_model.a"
  "librainbow_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rainbow_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
