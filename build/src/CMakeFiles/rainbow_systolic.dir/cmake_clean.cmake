file(REMOVE_RECURSE
  "CMakeFiles/rainbow_systolic.dir/systolic/conv_driver.cpp.o"
  "CMakeFiles/rainbow_systolic.dir/systolic/conv_driver.cpp.o.d"
  "CMakeFiles/rainbow_systolic.dir/systolic/gemm.cpp.o"
  "CMakeFiles/rainbow_systolic.dir/systolic/gemm.cpp.o.d"
  "CMakeFiles/rainbow_systolic.dir/systolic/pe_array.cpp.o"
  "CMakeFiles/rainbow_systolic.dir/systolic/pe_array.cpp.o.d"
  "librainbow_systolic.a"
  "librainbow_systolic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rainbow_systolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
