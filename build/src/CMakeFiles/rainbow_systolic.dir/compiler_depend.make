# Empty compiler generated dependencies file for rainbow_systolic.
# This may be replaced when dependencies are built.
