file(REMOVE_RECURSE
  "librainbow_systolic.a"
)
