file(REMOVE_RECURSE
  "librainbow_core.a"
)
