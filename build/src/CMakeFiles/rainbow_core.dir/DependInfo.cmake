
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analyzer.cpp" "src/CMakeFiles/rainbow_core.dir/core/analyzer.cpp.o" "gcc" "src/CMakeFiles/rainbow_core.dir/core/analyzer.cpp.o.d"
  "/root/repo/src/core/compression.cpp" "src/CMakeFiles/rainbow_core.dir/core/compression.cpp.o" "gcc" "src/CMakeFiles/rainbow_core.dir/core/compression.cpp.o.d"
  "/root/repo/src/core/energy.cpp" "src/CMakeFiles/rainbow_core.dir/core/energy.cpp.o" "gcc" "src/CMakeFiles/rainbow_core.dir/core/energy.cpp.o.d"
  "/root/repo/src/core/estimator.cpp" "src/CMakeFiles/rainbow_core.dir/core/estimator.cpp.o" "gcc" "src/CMakeFiles/rainbow_core.dir/core/estimator.cpp.o.d"
  "/root/repo/src/core/fallback.cpp" "src/CMakeFiles/rainbow_core.dir/core/fallback.cpp.o" "gcc" "src/CMakeFiles/rainbow_core.dir/core/fallback.cpp.o.d"
  "/root/repo/src/core/footprint.cpp" "src/CMakeFiles/rainbow_core.dir/core/footprint.cpp.o" "gcc" "src/CMakeFiles/rainbow_core.dir/core/footprint.cpp.o.d"
  "/root/repo/src/core/fusion.cpp" "src/CMakeFiles/rainbow_core.dir/core/fusion.cpp.o" "gcc" "src/CMakeFiles/rainbow_core.dir/core/fusion.cpp.o.d"
  "/root/repo/src/core/interlayer.cpp" "src/CMakeFiles/rainbow_core.dir/core/interlayer.cpp.o" "gcc" "src/CMakeFiles/rainbow_core.dir/core/interlayer.cpp.o.d"
  "/root/repo/src/core/manager.cpp" "src/CMakeFiles/rainbow_core.dir/core/manager.cpp.o" "gcc" "src/CMakeFiles/rainbow_core.dir/core/manager.cpp.o.d"
  "/root/repo/src/core/multitenant.cpp" "src/CMakeFiles/rainbow_core.dir/core/multitenant.cpp.o" "gcc" "src/CMakeFiles/rainbow_core.dir/core/multitenant.cpp.o.d"
  "/root/repo/src/core/plan.cpp" "src/CMakeFiles/rainbow_core.dir/core/plan.cpp.o" "gcc" "src/CMakeFiles/rainbow_core.dir/core/plan.cpp.o.d"
  "/root/repo/src/core/plan_io.cpp" "src/CMakeFiles/rainbow_core.dir/core/plan_io.cpp.o" "gcc" "src/CMakeFiles/rainbow_core.dir/core/plan_io.cpp.o.d"
  "/root/repo/src/core/policy.cpp" "src/CMakeFiles/rainbow_core.dir/core/policy.cpp.o" "gcc" "src/CMakeFiles/rainbow_core.dir/core/policy.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/rainbow_core.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/rainbow_core.dir/core/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rainbow_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rainbow_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rainbow_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
