# Empty dependencies file for rainbow_core.
# This may be replaced when dependencies are built.
