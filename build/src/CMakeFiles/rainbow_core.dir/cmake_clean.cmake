file(REMOVE_RECURSE
  "CMakeFiles/rainbow_core.dir/core/analyzer.cpp.o"
  "CMakeFiles/rainbow_core.dir/core/analyzer.cpp.o.d"
  "CMakeFiles/rainbow_core.dir/core/compression.cpp.o"
  "CMakeFiles/rainbow_core.dir/core/compression.cpp.o.d"
  "CMakeFiles/rainbow_core.dir/core/energy.cpp.o"
  "CMakeFiles/rainbow_core.dir/core/energy.cpp.o.d"
  "CMakeFiles/rainbow_core.dir/core/estimator.cpp.o"
  "CMakeFiles/rainbow_core.dir/core/estimator.cpp.o.d"
  "CMakeFiles/rainbow_core.dir/core/fallback.cpp.o"
  "CMakeFiles/rainbow_core.dir/core/fallback.cpp.o.d"
  "CMakeFiles/rainbow_core.dir/core/footprint.cpp.o"
  "CMakeFiles/rainbow_core.dir/core/footprint.cpp.o.d"
  "CMakeFiles/rainbow_core.dir/core/fusion.cpp.o"
  "CMakeFiles/rainbow_core.dir/core/fusion.cpp.o.d"
  "CMakeFiles/rainbow_core.dir/core/interlayer.cpp.o"
  "CMakeFiles/rainbow_core.dir/core/interlayer.cpp.o.d"
  "CMakeFiles/rainbow_core.dir/core/manager.cpp.o"
  "CMakeFiles/rainbow_core.dir/core/manager.cpp.o.d"
  "CMakeFiles/rainbow_core.dir/core/multitenant.cpp.o"
  "CMakeFiles/rainbow_core.dir/core/multitenant.cpp.o.d"
  "CMakeFiles/rainbow_core.dir/core/plan.cpp.o"
  "CMakeFiles/rainbow_core.dir/core/plan.cpp.o.d"
  "CMakeFiles/rainbow_core.dir/core/plan_io.cpp.o"
  "CMakeFiles/rainbow_core.dir/core/plan_io.cpp.o.d"
  "CMakeFiles/rainbow_core.dir/core/policy.cpp.o"
  "CMakeFiles/rainbow_core.dir/core/policy.cpp.o.d"
  "CMakeFiles/rainbow_core.dir/core/report.cpp.o"
  "CMakeFiles/rainbow_core.dir/core/report.cpp.o.d"
  "librainbow_core.a"
  "librainbow_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rainbow_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
