file(REMOVE_RECURSE
  "CMakeFiles/rainbow_dse.dir/dse/pareto.cpp.o"
  "CMakeFiles/rainbow_dse.dir/dse/pareto.cpp.o.d"
  "CMakeFiles/rainbow_dse.dir/dse/sensitivity.cpp.o"
  "CMakeFiles/rainbow_dse.dir/dse/sensitivity.cpp.o.d"
  "CMakeFiles/rainbow_dse.dir/dse/sweep.cpp.o"
  "CMakeFiles/rainbow_dse.dir/dse/sweep.cpp.o.d"
  "librainbow_dse.a"
  "librainbow_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rainbow_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
