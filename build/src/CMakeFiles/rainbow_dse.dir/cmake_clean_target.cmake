file(REMOVE_RECURSE
  "librainbow_dse.a"
)
