# Empty compiler generated dependencies file for rainbow_dse.
# This may be replaced when dependencies are built.
