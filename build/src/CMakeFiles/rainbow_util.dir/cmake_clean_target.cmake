file(REMOVE_RECURSE
  "librainbow_util.a"
)
