# Empty dependencies file for rainbow_util.
# This may be replaced when dependencies are built.
