file(REMOVE_RECURSE
  "CMakeFiles/rainbow_util.dir/util/csv.cpp.o"
  "CMakeFiles/rainbow_util.dir/util/csv.cpp.o.d"
  "CMakeFiles/rainbow_util.dir/util/stats.cpp.o"
  "CMakeFiles/rainbow_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/rainbow_util.dir/util/table.cpp.o"
  "CMakeFiles/rainbow_util.dir/util/table.cpp.o.d"
  "CMakeFiles/rainbow_util.dir/util/thread_pool.cpp.o"
  "CMakeFiles/rainbow_util.dir/util/thread_pool.cpp.o.d"
  "librainbow_util.a"
  "librainbow_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rainbow_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
