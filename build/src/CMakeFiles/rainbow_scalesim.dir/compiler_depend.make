# Empty compiler generated dependencies file for rainbow_scalesim.
# This may be replaced when dependencies are built.
