file(REMOVE_RECURSE
  "CMakeFiles/rainbow_scalesim.dir/scalesim/buffer.cpp.o"
  "CMakeFiles/rainbow_scalesim.dir/scalesim/buffer.cpp.o.d"
  "CMakeFiles/rainbow_scalesim.dir/scalesim/dataflow.cpp.o"
  "CMakeFiles/rainbow_scalesim.dir/scalesim/dataflow.cpp.o.d"
  "CMakeFiles/rainbow_scalesim.dir/scalesim/simulator.cpp.o"
  "CMakeFiles/rainbow_scalesim.dir/scalesim/simulator.cpp.o.d"
  "CMakeFiles/rainbow_scalesim.dir/scalesim/systolic.cpp.o"
  "CMakeFiles/rainbow_scalesim.dir/scalesim/systolic.cpp.o.d"
  "CMakeFiles/rainbow_scalesim.dir/scalesim/trace_writer.cpp.o"
  "CMakeFiles/rainbow_scalesim.dir/scalesim/trace_writer.cpp.o.d"
  "librainbow_scalesim.a"
  "librainbow_scalesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rainbow_scalesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
