file(REMOVE_RECURSE
  "librainbow_scalesim.a"
)
