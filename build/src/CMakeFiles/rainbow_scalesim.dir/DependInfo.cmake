
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scalesim/buffer.cpp" "src/CMakeFiles/rainbow_scalesim.dir/scalesim/buffer.cpp.o" "gcc" "src/CMakeFiles/rainbow_scalesim.dir/scalesim/buffer.cpp.o.d"
  "/root/repo/src/scalesim/dataflow.cpp" "src/CMakeFiles/rainbow_scalesim.dir/scalesim/dataflow.cpp.o" "gcc" "src/CMakeFiles/rainbow_scalesim.dir/scalesim/dataflow.cpp.o.d"
  "/root/repo/src/scalesim/simulator.cpp" "src/CMakeFiles/rainbow_scalesim.dir/scalesim/simulator.cpp.o" "gcc" "src/CMakeFiles/rainbow_scalesim.dir/scalesim/simulator.cpp.o.d"
  "/root/repo/src/scalesim/systolic.cpp" "src/CMakeFiles/rainbow_scalesim.dir/scalesim/systolic.cpp.o" "gcc" "src/CMakeFiles/rainbow_scalesim.dir/scalesim/systolic.cpp.o.d"
  "/root/repo/src/scalesim/trace_writer.cpp" "src/CMakeFiles/rainbow_scalesim.dir/scalesim/trace_writer.cpp.o" "gcc" "src/CMakeFiles/rainbow_scalesim.dir/scalesim/trace_writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rainbow_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rainbow_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rainbow_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
