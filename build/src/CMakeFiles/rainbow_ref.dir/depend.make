# Empty dependencies file for rainbow_ref.
# This may be replaced when dependencies are built.
