file(REMOVE_RECURSE
  "CMakeFiles/rainbow_ref.dir/ref/network_exec.cpp.o"
  "CMakeFiles/rainbow_ref.dir/ref/network_exec.cpp.o.d"
  "CMakeFiles/rainbow_ref.dir/ref/policy_exec.cpp.o"
  "CMakeFiles/rainbow_ref.dir/ref/policy_exec.cpp.o.d"
  "CMakeFiles/rainbow_ref.dir/ref/reference.cpp.o"
  "CMakeFiles/rainbow_ref.dir/ref/reference.cpp.o.d"
  "librainbow_ref.a"
  "librainbow_ref.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rainbow_ref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
