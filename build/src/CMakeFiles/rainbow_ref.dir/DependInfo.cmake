
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ref/network_exec.cpp" "src/CMakeFiles/rainbow_ref.dir/ref/network_exec.cpp.o" "gcc" "src/CMakeFiles/rainbow_ref.dir/ref/network_exec.cpp.o.d"
  "/root/repo/src/ref/policy_exec.cpp" "src/CMakeFiles/rainbow_ref.dir/ref/policy_exec.cpp.o" "gcc" "src/CMakeFiles/rainbow_ref.dir/ref/policy_exec.cpp.o.d"
  "/root/repo/src/ref/reference.cpp" "src/CMakeFiles/rainbow_ref.dir/ref/reference.cpp.o" "gcc" "src/CMakeFiles/rainbow_ref.dir/ref/reference.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rainbow_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rainbow_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rainbow_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rainbow_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
