file(REMOVE_RECURSE
  "librainbow_ref.a"
)
