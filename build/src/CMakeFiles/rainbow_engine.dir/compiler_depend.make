# Empty compiler generated dependencies file for rainbow_engine.
# This may be replaced when dependencies are built.
