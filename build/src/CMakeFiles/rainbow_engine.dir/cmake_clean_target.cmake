file(REMOVE_RECURSE
  "librainbow_engine.a"
)
