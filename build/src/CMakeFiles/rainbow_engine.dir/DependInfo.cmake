
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/engine.cpp" "src/CMakeFiles/rainbow_engine.dir/engine/engine.cpp.o" "gcc" "src/CMakeFiles/rainbow_engine.dir/engine/engine.cpp.o.d"
  "/root/repo/src/engine/glb.cpp" "src/CMakeFiles/rainbow_engine.dir/engine/glb.cpp.o" "gcc" "src/CMakeFiles/rainbow_engine.dir/engine/glb.cpp.o.d"
  "/root/repo/src/engine/schedule.cpp" "src/CMakeFiles/rainbow_engine.dir/engine/schedule.cpp.o" "gcc" "src/CMakeFiles/rainbow_engine.dir/engine/schedule.cpp.o.d"
  "/root/repo/src/engine/timeline.cpp" "src/CMakeFiles/rainbow_engine.dir/engine/timeline.cpp.o" "gcc" "src/CMakeFiles/rainbow_engine.dir/engine/timeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rainbow_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rainbow_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rainbow_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rainbow_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
