file(REMOVE_RECURSE
  "CMakeFiles/rainbow_engine.dir/engine/engine.cpp.o"
  "CMakeFiles/rainbow_engine.dir/engine/engine.cpp.o.d"
  "CMakeFiles/rainbow_engine.dir/engine/glb.cpp.o"
  "CMakeFiles/rainbow_engine.dir/engine/glb.cpp.o.d"
  "CMakeFiles/rainbow_engine.dir/engine/schedule.cpp.o"
  "CMakeFiles/rainbow_engine.dir/engine/schedule.cpp.o.d"
  "CMakeFiles/rainbow_engine.dir/engine/timeline.cpp.o"
  "CMakeFiles/rainbow_engine.dir/engine/timeline.cpp.o.d"
  "librainbow_engine.a"
  "librainbow_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rainbow_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
