file(REMOVE_RECURSE
  "librainbow_arch.a"
)
