file(REMOVE_RECURSE
  "CMakeFiles/rainbow_arch.dir/arch/accelerator.cpp.o"
  "CMakeFiles/rainbow_arch.dir/arch/accelerator.cpp.o.d"
  "librainbow_arch.a"
  "librainbow_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rainbow_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
