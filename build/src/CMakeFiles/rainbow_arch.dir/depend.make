# Empty dependencies file for rainbow_arch.
# This may be replaced when dependencies are built.
