# Empty dependencies file for rainbow_codegen.
# This may be replaced when dependencies are built.
