file(REMOVE_RECURSE
  "librainbow_codegen.a"
)
