file(REMOVE_RECURSE
  "CMakeFiles/rainbow_codegen.dir/codegen/interpret.cpp.o"
  "CMakeFiles/rainbow_codegen.dir/codegen/interpret.cpp.o.d"
  "CMakeFiles/rainbow_codegen.dir/codegen/lower.cpp.o"
  "CMakeFiles/rainbow_codegen.dir/codegen/lower.cpp.o.d"
  "CMakeFiles/rainbow_codegen.dir/codegen/print.cpp.o"
  "CMakeFiles/rainbow_codegen.dir/codegen/print.cpp.o.d"
  "librainbow_codegen.a"
  "librainbow_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rainbow_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
