# Empty dependencies file for verify_policies.
# This may be replaced when dependencies are built.
