file(REMOVE_RECURSE
  "CMakeFiles/verify_policies.dir/verify_policies.cpp.o"
  "CMakeFiles/verify_policies.dir/verify_policies.cpp.o.d"
  "verify_policies"
  "verify_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
