file(REMOVE_RECURSE
  "CMakeFiles/plan_audit.dir/plan_audit.cpp.o"
  "CMakeFiles/plan_audit.dir/plan_audit.cpp.o.d"
  "plan_audit"
  "plan_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
