# Empty compiler generated dependencies file for plan_audit.
# This may be replaced when dependencies are built.
