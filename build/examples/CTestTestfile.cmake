# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  PASS_REGULAR_EXPRESSION "engine check: measured" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;8;rainbow_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_model "/root/repo/build/examples/custom_model")
set_tests_properties(example_custom_model PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;9;rainbow_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_design_space "/root/repo/build/examples/design_space")
set_tests_properties(example_design_space PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;10;rainbow_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_edge_deployment "/root/repo/build/examples/edge_deployment")
set_tests_properties(example_edge_deployment PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;11;rainbow_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multi_tenant "/root/repo/build/examples/multi_tenant")
set_tests_properties(example_multi_tenant PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;12;rainbow_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_streaming_inference "/root/repo/build/examples/streaming_inference")
set_tests_properties(example_streaming_inference PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;13;rainbow_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_verify_policies "/root/repo/build/examples/verify_policies")
set_tests_properties(example_verify_policies PROPERTIES  PASS_REGULAR_EXPRESSION "matches the reference" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;14;rainbow_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_plan_audit "/root/repo/build/examples/plan_audit")
set_tests_properties(example_plan_audit PROPERTIES  PASS_REGULAR_EXPRESSION "invalid edit rejected" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;15;rainbow_add_example;/root/repo/examples/CMakeLists.txt;0;")
