file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_onchip_bw.dir/bench_ablation_onchip_bw.cpp.o"
  "CMakeFiles/bench_ablation_onchip_bw.dir/bench_ablation_onchip_bw.cpp.o.d"
  "CMakeFiles/bench_ablation_onchip_bw.dir/bench_common.cpp.o"
  "CMakeFiles/bench_ablation_onchip_bw.dir/bench_common.cpp.o.d"
  "bench_ablation_onchip_bw"
  "bench_ablation_onchip_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_onchip_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
