# Empty compiler generated dependencies file for bench_ablation_onchip_bw.
# This may be replaced when dependencies are built.
