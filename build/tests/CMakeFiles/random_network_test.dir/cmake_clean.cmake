file(REMOVE_RECURSE
  "CMakeFiles/random_network_test.dir/random_network_test.cpp.o"
  "CMakeFiles/random_network_test.dir/random_network_test.cpp.o.d"
  "random_network_test"
  "random_network_test.pdb"
  "random_network_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
