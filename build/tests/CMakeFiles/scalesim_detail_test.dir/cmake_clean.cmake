file(REMOVE_RECURSE
  "CMakeFiles/scalesim_detail_test.dir/scalesim_detail_test.cpp.o"
  "CMakeFiles/scalesim_detail_test.dir/scalesim_detail_test.cpp.o.d"
  "scalesim_detail_test"
  "scalesim_detail_test.pdb"
  "scalesim_detail_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalesim_detail_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
