# Empty dependencies file for scalesim_detail_test.
# This may be replaced when dependencies are built.
