file(REMOVE_RECURSE
  "CMakeFiles/estimator_detail_test.dir/estimator_detail_test.cpp.o"
  "CMakeFiles/estimator_detail_test.dir/estimator_detail_test.cpp.o.d"
  "estimator_detail_test"
  "estimator_detail_test.pdb"
  "estimator_detail_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimator_detail_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
