file(REMOVE_RECURSE
  "CMakeFiles/multitenant_test.dir/multitenant_test.cpp.o"
  "CMakeFiles/multitenant_test.dir/multitenant_test.cpp.o.d"
  "multitenant_test"
  "multitenant_test.pdb"
  "multitenant_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multitenant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
