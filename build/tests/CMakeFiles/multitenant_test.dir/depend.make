# Empty dependencies file for multitenant_test.
# This may be replaced when dependencies are built.
