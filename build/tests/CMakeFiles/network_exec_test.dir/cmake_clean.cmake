file(REMOVE_RECURSE
  "CMakeFiles/network_exec_test.dir/network_exec_test.cpp.o"
  "CMakeFiles/network_exec_test.dir/network_exec_test.cpp.o.d"
  "network_exec_test"
  "network_exec_test.pdb"
  "network_exec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_exec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
