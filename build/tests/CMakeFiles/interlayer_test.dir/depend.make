# Empty dependencies file for interlayer_test.
# This may be replaced when dependencies are built.
