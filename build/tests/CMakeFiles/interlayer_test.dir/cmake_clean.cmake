file(REMOVE_RECURSE
  "CMakeFiles/interlayer_test.dir/interlayer_test.cpp.o"
  "CMakeFiles/interlayer_test.dir/interlayer_test.cpp.o.d"
  "interlayer_test"
  "interlayer_test.pdb"
  "interlayer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interlayer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
