file(REMOVE_RECURSE
  "CMakeFiles/fallback_test.dir/fallback_test.cpp.o"
  "CMakeFiles/fallback_test.dir/fallback_test.cpp.o.d"
  "fallback_test"
  "fallback_test.pdb"
  "fallback_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fallback_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
