file(REMOVE_RECURSE
  "CMakeFiles/trace_writer_test.dir/trace_writer_test.cpp.o"
  "CMakeFiles/trace_writer_test.dir/trace_writer_test.cpp.o.d"
  "trace_writer_test"
  "trace_writer_test.pdb"
  "trace_writer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_writer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
