file(REMOVE_RECURSE
  "CMakeFiles/integration_extras_test.dir/integration_extras_test.cpp.o"
  "CMakeFiles/integration_extras_test.dir/integration_extras_test.cpp.o.d"
  "integration_extras_test"
  "integration_extras_test.pdb"
  "integration_extras_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_extras_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
