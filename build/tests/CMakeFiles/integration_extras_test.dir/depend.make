# Empty dependencies file for integration_extras_test.
# This may be replaced when dependencies are built.
