file(REMOVE_RECURSE
  "CMakeFiles/zoo_dims_test.dir/zoo_dims_test.cpp.o"
  "CMakeFiles/zoo_dims_test.dir/zoo_dims_test.cpp.o.d"
  "zoo_dims_test"
  "zoo_dims_test.pdb"
  "zoo_dims_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zoo_dims_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
