# Empty dependencies file for zoo_dims_test.
# This may be replaced when dependencies are built.
