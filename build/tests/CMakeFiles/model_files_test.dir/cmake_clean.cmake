file(REMOVE_RECURSE
  "CMakeFiles/model_files_test.dir/model_files_test.cpp.o"
  "CMakeFiles/model_files_test.dir/model_files_test.cpp.o.d"
  "model_files_test"
  "model_files_test.pdb"
  "model_files_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_files_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
