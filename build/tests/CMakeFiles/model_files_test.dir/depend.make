# Empty dependencies file for model_files_test.
# This may be replaced when dependencies are built.
