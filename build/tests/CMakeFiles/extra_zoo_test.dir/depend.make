# Empty dependencies file for extra_zoo_test.
# This may be replaced when dependencies are built.
