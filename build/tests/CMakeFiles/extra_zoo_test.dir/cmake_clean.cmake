file(REMOVE_RECURSE
  "CMakeFiles/extra_zoo_test.dir/extra_zoo_test.cpp.o"
  "CMakeFiles/extra_zoo_test.dir/extra_zoo_test.cpp.o.d"
  "extra_zoo_test"
  "extra_zoo_test.pdb"
  "extra_zoo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_zoo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
