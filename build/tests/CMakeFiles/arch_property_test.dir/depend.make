# Empty dependencies file for arch_property_test.
# This may be replaced when dependencies are built.
