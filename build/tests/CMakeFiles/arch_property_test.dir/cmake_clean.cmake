file(REMOVE_RECURSE
  "CMakeFiles/arch_property_test.dir/arch_property_test.cpp.o"
  "CMakeFiles/arch_property_test.dir/arch_property_test.cpp.o.d"
  "arch_property_test"
  "arch_property_test.pdb"
  "arch_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arch_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
