file(REMOVE_RECURSE
  "CMakeFiles/glb_test.dir/glb_test.cpp.o"
  "CMakeFiles/glb_test.dir/glb_test.cpp.o.d"
  "glb_test"
  "glb_test.pdb"
  "glb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
