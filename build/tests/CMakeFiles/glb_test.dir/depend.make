# Empty dependencies file for glb_test.
# This may be replaced when dependencies are built.
