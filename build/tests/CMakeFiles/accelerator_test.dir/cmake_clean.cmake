file(REMOVE_RECURSE
  "CMakeFiles/accelerator_test.dir/accelerator_test.cpp.o"
  "CMakeFiles/accelerator_test.dir/accelerator_test.cpp.o.d"
  "accelerator_test"
  "accelerator_test.pdb"
  "accelerator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accelerator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
