file(REMOVE_RECURSE
  "CMakeFiles/scalesim_test.dir/scalesim_test.cpp.o"
  "CMakeFiles/scalesim_test.dir/scalesim_test.cpp.o.d"
  "scalesim_test"
  "scalesim_test.pdb"
  "scalesim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalesim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
