// Design-space exploration: how much scratchpad does a model actually
// need, and what does each kilobyte buy?  Sweeps GLB sizes for a chosen
// model, prints the accesses/latency frontier under both objectives, and
// reports where inter-layer reuse starts paying.  The sweep cells run on a
// thread pool.
//
//   $ ./design_space [model]            (default: MobileNetV2)
#include <iostream>
#include <vector>

#include "core/manager.hpp"
#include "dse/sensitivity.hpp"
#include "model/summary.hpp"
#include "model/zoo/zoo.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace rainbow;
  using core::Objective;
  const std::string model_name = argc > 1 ? argv[1] : "MobileNetV2";
  const model::Network net = model::zoo::by_name(model_name);
  const std::size_t boundaries = core::sequential_boundaries(net);

  struct Cell {
    count_t glb_kb;
    double acc_mb = 0, lat_mcyc = 0, lat_obj_mcyc = 0;
    double inter_acc_mb = 0, inter_coverage = 0;
    double prefetch_coverage = 0;
  };
  std::vector<Cell> cells;
  for (count_t kb = 16; kb <= 2048; kb *= 2) {
    cells.push_back({.glb_kb = kb});
  }

  util::parallel_for_each(cells, [&](Cell& cell) {
    const auto spec = arch::paper_spec(util::kib(cell.glb_kb));
    const core::MemoryManager manager(spec);
    const auto acc_plan = manager.plan(net, Objective::kAccesses);
    const auto lat_plan = manager.plan(net, Objective::kLatency);
    cell.acc_mb = acc_plan.total_access_mb();
    cell.lat_mcyc = acc_plan.total_latency_cycles() / 1e6;
    cell.lat_obj_mcyc = lat_plan.total_latency_cycles() / 1e6;
    cell.prefetch_coverage = 100.0 * lat_plan.prefetch_coverage();

    core::ManagerOptions inter;
    inter.interlayer_reuse = true;
    const auto inter_plan =
        core::MemoryManager(spec, inter).plan(net, Objective::kAccesses);
    cell.inter_acc_mb = inter_plan.total_access_mb();
    cell.inter_coverage = 100.0 * inter_plan.interlayer_coverage(boundaries);
  });

  util::Table table({"GLB kB", "Het_a MB", "Het_a Mcyc", "Het_l Mcyc",
                     "prefetch cov %", "+inter MB", "inter cov %"});
  for (const Cell& c : cells) {
    table.add_row({std::to_string(c.glb_kb), util::fmt(c.acc_mb, 2),
                   util::fmt(c.lat_mcyc, 2), util::fmt(c.lat_obj_mcyc, 2),
                   util::fmt(c.prefetch_coverage, 0),
                   util::fmt(c.inter_acc_mb, 2),
                   util::fmt(c.inter_coverage, 0)});
  }
  std::cout << "design-space sweep for " << net.name() << " ("
            << net.size() << " layers)\n";
  table.print(std::cout);

  // A simple sizing recommendation: the smallest GLB within 5% of the
  // asymptotic access volume, and the smallest where inter-layer reuse
  // covers half the boundaries.
  const double floor_mb = cells.back().inter_acc_mb;
  for (const Cell& c : cells) {
    if (c.inter_acc_mb <= 1.05 * floor_mb) {
      std::cout << "\nrecommendation: " << c.glb_kb
                << " kB reaches within 5% of the asymptotic off-chip volume ("
                << util::fmt(floor_mb, 2) << " MB)\n";
      break;
    }
  }

  // Marginal-utility view (dse/sensitivity): what each doubling buys, and
  // where the curve stops paying for its SRAM.
  dse::SweepConfig config;
  for (count_t kb = 16; kb <= 2048; kb *= 2) {
    config.glb_bytes.push_back(util::kib(kb));
  }
  const auto points = dse::run_sweep(net, config);
  std::cout << "\nmarginal utility (off-chip bytes saved per added on-chip "
               "byte, per inference):\n";
  for (const auto& m : dse::marginal_utility(points)) {
    std::cout << "  " << m.from_bytes / 1024 << " -> " << m.to_bytes / 1024
              << " kB: " << util::fmt(m.bytes_saved_per_byte, 2) << "\n";
  }
  std::cout << "knee (marginal value < 1 byte/byte): "
            << dse::knee_glb_bytes(points) / 1024 << " kB\n";

  const auto summary = model::summarize(net);
  std::cout << "profile: " << model::to_string(summary.dominance)
            << ", arithmetic intensity "
            << util::fmt(summary.arithmetic_intensity, 1)
            << " MACs/element at compulsory traffic\n";
  return 0;
}
