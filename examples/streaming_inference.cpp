// Streaming / batched inference: Section 2.2's "global reuse" — filters
// stay on-chip and are reused every time a new input arrives.  This
// example plans MobileNet for a camera-style stream at several batch
// sizes and shows how the manager shifts to weight-resident policies as
// the batch grows, amortizing the filter traffic.
#include <iostream>
#include <map>

#include "core/manager.hpp"
#include "model/zoo/zoo.hpp"
#include "util/table.hpp"

int main() {
  using namespace rainbow;
  using core::Objective;
  using core::Policy;

  const auto net = model::zoo::by_name("MobileNet");
  const auto spec = arch::paper_spec(util::kib(256));

  util::Table table({"batch", "per-frame MB", "per-frame Mcyc",
                     "weight-resident layers", "dominant policies"});
  for (int batch : {1, 4, 16, 64}) {
    core::ManagerOptions options;
    options.analyzer.estimator.batch = batch;
    const core::MemoryManager manager(spec, options);
    const auto plan = manager.plan(net, Objective::kAccesses);

    std::size_t resident = 0;
    std::map<std::string, int> policy_counts;
    for (const auto& a : plan.assignments()) {
      if (core::Estimator::filters_amortize_over_batch(
              a.estimate.choice.policy)) {
        ++resident;
      }
      ++policy_counts[std::string(
          core::short_label(a.estimate.choice.policy, false))];
    }
    std::string dominant;
    for (const auto& [label, count] : policy_counts) {
      if (!dominant.empty()) {
        dominant += " ";
      }
      dominant += label + ":" + std::to_string(count);
    }
    table.add_row({std::to_string(batch),
                   util::fmt(plan.total_access_mb() / batch, 2),
                   util::fmt(plan.total_latency_cycles() / batch / 1e6, 2),
                   std::to_string(resident) + "/" + std::to_string(net.size()),
                   dominant});
  }

  std::cout << "streaming inference on MobileNet @ 256 kB scratchpad\n";
  table.print(std::cout);
  std::cout << "\nreading: at batch 1 the manager freely mixes policies; as "
               "the stream lengthens it pays the ifmap re-load price of the "
               "weight-resident policies (p1/p4) to load each filter once "
               "per batch — Section 2.2's global reuse, applied by the "
               "analyser instead of by hand.\n";
  return 0;
}
