// Multi-tenancy scenario from the paper's introduction: several models
// share one accelerator.  Three ways to share the scratchpad, worst to
// best:
//   (a) static spatial split — each tenant permanently owns half the GLB;
//   (b) time-multiplexed     — each tenant re-planned with the full GLB
//                              during its slot;
//   (c) co-scheduled         — layers interleave and the planner chooses
//                              both tenants' policies jointly so that one
//                              tenant's loads hide behind the other's
//                              compute (core/multitenant.hpp).
#include <iostream>

#include "core/manager.hpp"
#include "core/multitenant.hpp"
#include "model/zoo/zoo.hpp"
#include "util/table.hpp"

int main() {
  using namespace rainbow;
  using core::Objective;

  const count_t total_kb = 128;
  const auto tenant_a = model::zoo::by_name("MobileNetV2");
  const auto tenant_b = model::zoo::by_name("ResNet18");
  const auto spec = arch::paper_spec(util::kib(total_kb));

  util::Table table({"sharing", "off-chip MB", "latency Mcyc", "note"});

  // (a) static split.
  const core::MemoryManager half(arch::paper_spec(util::kib(total_kb / 2)));
  double split_mb = 0.0, split_cycles = 0.0;
  for (const auto* net : {&tenant_a, &tenant_b}) {
    const auto plan = half.plan(*net, Objective::kAccesses);
    split_mb += plan.total_access_mb();
    split_cycles += plan.total_latency_cycles();
  }
  table.add_row({"static split", util::fmt(split_mb, 2),
                 util::fmt(split_cycles / 1e6, 2),
                 std::to_string(total_kb / 2) + " kB each, always"});

  // (b) time-multiplexed.
  const core::MemoryManager full(spec);
  double tm_mb = 0.0, tm_cycles = 0.0;
  for (const auto* net : {&tenant_a, &tenant_b}) {
    const auto plan = full.plan(*net, Objective::kAccesses);
    tm_mb += plan.total_access_mb();
    tm_cycles += plan.total_latency_cycles();
  }
  table.add_row({"time-multiplexed", util::fmt(tm_mb, 2),
                 util::fmt(tm_cycles / 1e6, 2),
                 "full GLB per slot, no overlap across tenants"});

  // (c) co-scheduled.  Its latency numbers come from the coarser
  // cross-tenant pipeline model (per-layer compute/transfer overlap), so
  // compare its serialized and overlapped variants with each other.
  const auto joint =
      core::plan_multi_tenant(tenant_a, tenant_b, spec, Objective::kAccesses);
  table.add_row({"co-scheduled, serial", util::fmt(joint.total_access_mb(spec), 2),
                 util::fmt(joint.serialized_latency_cycles / 1e6, 2),
                 "joint policies, no cross-tenant overlap"});
  table.add_row({"co-scheduled, overlap", util::fmt(joint.total_access_mb(spec), 2),
                 util::fmt(joint.overlapped_latency_cycles / 1e6, 2),
                 "one tenant loads behind the other's compute; peak "
                 "combined set " +
                     util::fmt(static_cast<double>(joint.peak_combined_elems *
                                                   spec.element_bytes()) /
                                   1024.0,
                               0) +
                     " kB"});

  std::cout << "two tenants (" << tenant_a.name() << " + " << tenant_b.name()
            << ") sharing a " << total_kb << " kB scratchpad\n";
  table.print(std::cout);
  std::cout << "\nreading: the heterogeneous scheme's access-flatness "
               "(Figure 5) makes time-multiplexed sharing nearly free — a "
               "direct consequence of the paper's result.  Co-scheduling "
               "adds cross-tenant overlap on top: within its own timing "
               "model, interleaving hides one tenant's transfers behind "
               "the other tenant's compute.\n";
  return 0;
}
