// Bringing your own network: build a model programmatically (or load the
// text format), then compare every policy on its heaviest layer and plan
// the whole network.  The model here is a small keyword-spotting style CNN
// — the kind of workload a battery-powered accelerator with a tiny
// scratchpad actually runs.
#include <iostream>
#include <sstream>

#include "core/manager.hpp"
#include "model/parser.hpp"
#include "model/zoo/builders.hpp"

int main() {
  using namespace rainbow;

  // Option A: the builder API.
  model::Network net("kws-tiny");
  net.add(model::make_conv("stem", 64, 64, 1, 3, 3, 16, 2, 1));
  model::zoo::Cursor cur{32, 32, 16};
  model::zoo::append_separable(net, cur, "sep1", 3, 1, 32);
  model::zoo::append_separable(net, cur, "sep2", 3, 2, 64);
  model::zoo::append_mbconv(net, cur, "mb1", 3, 1, 4, 64,
                            /*squeeze_excite=*/false);
  net.add(model::make_fully_connected("head", 64, 12));

  // Option B: the text format round-trips the same model.
  const std::string text = model::serialize_network(net);
  const model::Network reloaded = model::parse_network(text);
  std::cout << "text format round-trip: " << reloaded.size() << " layers\n\n"
            << text << '\n';

  // Compare every policy on the most memory-hungry layer.
  const arch::AcceleratorSpec spec = arch::paper_spec(util::kib(32));
  const core::Estimator estimator(spec);
  std::size_t heaviest = 0;
  count_t heaviest_total = 0;
  for (std::size_t i = 0; i < net.size(); ++i) {
    const auto e = estimator.estimate_choice(
        net.layer(i), {.policy = core::Policy::kIntraLayer});
    if (e.memory_elems() > heaviest_total) {
      heaviest_total = e.memory_elems();
      heaviest = i;
    }
  }
  const model::Layer& layer = net.layer(heaviest);
  std::cout << "policy comparison on " << layer << ":\n";
  for (core::Policy p : core::kAllPolicies) {
    const auto e = estimator.estimate(layer, p, /*prefetch=*/false);
    std::ostringstream label;
    label << e.choice;
    std::cout << "  " << label.str() << ": "
              << static_cast<double>(e.memory_elems()) / 1024.0 << " kB, "
              << e.accesses() << " accesses"
              << (e.feasible ? "" : "  [does not fit 32 kB]") << '\n';
  }

  // Plan the whole network under both objectives.
  const core::MemoryManager manager(spec);
  const auto plan = manager.plan(net, core::Objective::kAccesses);
  std::cout << '\n' << manager.describe(plan, net);
  return 0;
}
