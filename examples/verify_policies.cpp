// End-to-end trust chain: this example demonstrates the three independent
// implementations of a layer's computation agreeing exactly —
//   1. the golden reference convolution,
//   2. every memory-management policy's loop nest with bounded buffers,
//   3. the register-level output-stationary systolic array —
// and the cycle count of (3) landing on the analytic fold model the
// baseline simulator charges.  Run it when you change any of the four.
#include <iostream>
#include <sstream>

#include "core/footprint.hpp"
#include "ref/policy_exec.hpp"
#include "scalesim/systolic.hpp"
#include "systolic/conv_driver.hpp"
#include "util/table.hpp"

int main() {
  using namespace rainbow;
  using core::Policy;
  using core::PolicyChoice;

  const model::Layer layer =
      model::make_conv("demo", 14, 14, 8, 3, 3, 16, 1, 1);
  const auto spec = arch::paper_spec(util::kib(64));
  const auto ops = ref::random_operands(layer, 2024);

  std::cout << "layer: " << layer << "\n\n";
  const ref::Tensor3 golden = ref::reference_forward(layer, ops);

  // 2. Every policy, numerically, with buffers bounded by its footprint.
  util::Table table({"policy", "matches reference", "ifmap buf B",
                     "filter buf B", "ofmap buf B", "footprint claim B"});
  std::vector<PolicyChoice> choices = {
      {.policy = Policy::kIntraLayer},
      {.policy = Policy::kIfmapReuse},
      {.policy = Policy::kFilterReuse},
      {.policy = Policy::kPerChannel},
      {.policy = Policy::kPartialIfmap, .filter_block = 4},
      {.policy = Policy::kPartialPerChannel, .filter_block = 4},
      {.policy = Policy::kFallbackTiled, .filter_block = 4, .row_stripe = 5},
  };
  for (const PolicyChoice& choice : choices) {
    ref::BufferPeaks peaks;
    const ref::Tensor3 got = ref::execute_policy(layer, choice, ops, &peaks);
    const core::Footprint fp = core::working_footprint(layer, choice);
    std::ostringstream label;
    label << choice;
    table.add_row({label.str(), got == golden ? "yes" : "NO",
                   std::to_string(peaks.ifmap), std::to_string(peaks.filter),
                   std::to_string(peaks.ofmap), std::to_string(fp.total())});
  }
  table.print(std::cout);

  // 3. The functional systolic array.
  const systolic::ConvRun run = systolic::run_conv(layer, ops, spec);
  std::cout << "\nsystolic array: output "
            << (run.ofmap == golden ? "matches" : "DOES NOT match")
            << " the reference; " << run.folds << " folds, " << run.cycles
            << " cycles (analytic model: "
            << scalesim::compute_cycles(layer, spec) << ")\n";
  return run.ofmap == golden ? 0 : 1;
}
