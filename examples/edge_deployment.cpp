// Edge-deployment scenario from the paper's motivation: a battery-powered
// device must run several vision models on one small accelerator, and
// off-chip DRAM traffic is the energy budget (10-100x the cost of a local
// access, Section 2.3).  This example sizes the energy win of unified
// management at 64 kB and shows the per-model latency/energy menu a
// deployment engineer would pick from.
#include <iostream>

#include "core/manager.hpp"
#include "model/zoo/zoo.hpp"
#include "scalesim/simulator.hpp"
#include "util/table.hpp"

int main() {
  using namespace rainbow;
  using core::Objective;

  const auto spec = arch::paper_spec(util::kib(64));
  // Energy model: 100 pJ per off-chip element (8-bit), 0.2 pJ per MAC —
  // representative edge-accelerator numbers; only ratios matter here.
  constexpr double kDramPjPerElem = 100.0;
  constexpr double kMacPj = 0.2;

  const core::MemoryManager manager(spec);
  util::Table table({"model", "scheme", "off-chip MB", "latency Mcyc",
                     "energy mJ", "energy vs baseline %"});

  for (const auto& net : model::zoo::all_models()) {
    // Best fixed-partition baseline the device could ship instead.
    double baseline_mb = 1e30;
    count_t baseline_cycles = 0;
    for (const auto& part : scalesim::paper_partitions()) {
      const scalesim::Simulator sim(spec, part);
      const auto run = sim.run(net);
      if (run.access_mb(spec) < baseline_mb) {
        baseline_mb = run.access_mb(spec);
        baseline_cycles = run.total_cycles;
      }
    }
    const double mac_mj = static_cast<double>(net.total_macs()) * kMacPj * 1e-9;
    const double baseline_mj =
        baseline_mb * 1024 * 1024 * kDramPjPerElem * 1e-9 + mac_mj;

    const auto plan_a = manager.plan(net, Objective::kAccesses);
    const auto plan_l = manager.plan(net, Objective::kLatency);
    auto energy_mj = [&](double mb) {
      return mb * 1024 * 1024 * kDramPjPerElem * 1e-9 + mac_mj;
    };

    table.add_row({net.name(), "best fixed split", util::fmt(baseline_mb, 2),
                   util::fmt(static_cast<double>(baseline_cycles) / 1e6, 2),
                   util::fmt(baseline_mj, 2), "0.0"});
    auto add_scheme = [&](const char* label, const core::ExecutionPlan& plan) {
      const double mj = energy_mj(plan.total_access_mb());
      table.add_row({net.name(), label, util::fmt(plan.total_access_mb(), 2),
                     util::fmt(plan.total_latency_cycles() / 1e6, 2),
                     util::fmt(mj, 2),
                     util::fmt(100.0 * (baseline_mj - mj) / baseline_mj)});
    };
    add_scheme("Het (energy)", plan_a);
    add_scheme("Het (latency)", plan_l);
  }

  std::cout << "edge deployment menu @ 64 kB scratchpad (energy: 100 pJ per "
               "off-chip element, 0.2 pJ per MAC)\n";
  table.print(std::cout);
  std::cout << "\nreading: with DRAM dominating the energy budget, the "
               "access-optimized plans translate the paper's traffic cuts "
               "almost one-for-one into battery life; the latency plans show "
               "what the same hardware gives up when responsiveness matters "
               "more.\n";
  return 0;
}
