// Quickstart: plan the execution of a built-in model on the paper's
// accelerator and inspect the result.
//
//   $ ./quickstart [model] [glb_kb]     (defaults: ResNet18, 64)
#include <cstdlib>
#include <iostream>

#include "core/manager.hpp"
#include "engine/engine.hpp"
#include "model/zoo/zoo.hpp"

int main(int argc, char** argv) {
  using namespace rainbow;
  const std::string model_name = argc > 1 ? argv[1] : "ResNet18";
  const count_t glb_kb = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 64;

  // 1. Pick a model (or build your own; see examples/custom_model.cpp).
  const model::Network net = model::zoo::by_name(model_name);
  std::cout << net.name() << ": " << net.size() << " layers, "
            << static_cast<double>(net.total_macs()) / 1e6 << " MMACs\n\n";

  // 2. Describe the accelerator: 16x16 PEs, 8-bit data, 16 B/cycle DRAM
  //    bandwidth, and a unified scratchpad of the requested size.
  const arch::AcceleratorSpec spec = arch::paper_spec(util::kib(glb_kb));

  // 3. Let the memory manager pick a policy per layer (Algorithm 1).
  const core::MemoryManager manager(spec);
  const core::ExecutionPlan for_accesses =
      manager.plan(net, core::Objective::kAccesses);
  const core::ExecutionPlan for_latency =
      manager.plan(net, core::Objective::kLatency);

  std::cout << manager.describe(for_accesses, net) << '\n';

  std::cout << "objective comparison @ " << glb_kb << " kB GLB:\n"
            << "  accesses objective: " << for_accesses.total_access_mb()
            << " MB off-chip, " << for_accesses.total_latency_cycles() / 1e6
            << " Mcycles\n"
            << "  latency objective:  " << for_latency.total_access_mb()
            << " MB off-chip, " << for_latency.total_latency_cycles() / 1e6
            << " Mcycles\n\n";

  // 4. Execute the plan in the tile-level engine: the measured traffic
  //    equals the plan's estimate, tile by tile.
  const engine::Engine engine(spec);
  const engine::PlanExecution exec = engine.execute_plan(for_accesses, net);
  std::cout << "engine check: measured "
            << static_cast<double>(exec.total_accesses * spec.element_bytes()) /
                   (1024.0 * 1024.0)
            << " MB vs planned " << for_accesses.total_access_mb() << " MB\n";
  return 0;
}
