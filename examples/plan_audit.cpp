// Plan auditing workflow: generate a plan, store its decisions next to a
// deployment, have a reviewer tweak one decision, and let the loader
// re-derive and validate everything — the toolchain loop behind
// `rainbow_plan --plan-out/--plan-in`.
#include <iostream>

#include "core/manager.hpp"
#include "core/plan_io.hpp"
#include "model/zoo/zoo.hpp"

int main() {
  using namespace rainbow;
  const auto net = model::zoo::by_name("MobileNet");
  const auto spec = arch::paper_spec(util::kib(64));
  const core::MemoryManager manager(spec);

  // 1. Plan and serialize the decisions (policies only, no metrics).
  const auto plan = manager.plan(net, core::Objective::kAccesses);
  std::string stored = core::serialize_plan(plan);
  std::cout << "stored plan (" << net.size() << " decisions):\n"
            << stored.substr(0, stored.find('\n', stored.find("\n0,") + 1) + 1)
            << "...\n\n";

  // 2. Reloading re-derives identical metrics from the decisions alone.
  const auto reloaded = core::parse_plan(stored, net);
  std::cout << "round trip: " << reloaded.total_access_mb() << " MB vs "
            << plan.total_access_mb() << " MB planned\n";

  // 3. An auditor forces layer 25 (7x7x1024 depthwise) onto filter reuse;
  //    the loader accepts it and re-prices the plan.
  const auto pos = stored.find("\n25, ");
  const auto end = stored.find('\n', pos + 1);
  stored.replace(pos, end - pos, "\n25, p2, 0, 1, 0, 0, 0");
  const auto edited = core::parse_plan(stored, net);
  std::cout << "after the audit edit: " << edited.total_access_mb()
            << " MB (layer 25 now "
            << core::short_label(
                   edited.assignment(25).estimate.choice.policy,
                   edited.assignment(25).estimate.choice.prefetch)
            << ")\n";

  // 4. An invalid edit — whole-layer residency at 64 kB — is refused with
  //    a precise reason instead of silently mispricing.
  auto broken = core::serialize_plan(plan);
  const auto p1 = broken.find("\n1, ");
  broken.replace(p1, broken.find('\n', p1 + 1) - p1, "\n1, intra, 0, 1, 0, 0, 0");
  try {
    (void)core::parse_plan(broken, net);
    std::cout << "ERROR: invalid plan was accepted\n";
    return 1;
  } catch (const std::exception& e) {
    std::cout << "invalid edit rejected: " << e.what() << '\n';
  }
  return 0;
}
