// rainbow_oracle: the exact planning oracle as a command-line tool —
// branch-and-bound over (policy x prefetch x inter-layer links), reporting
// Algorithm 1's optimality gap, and cross-checking both plans through the
// PlanValidator (V codes) and the static stream analyzer (S codes) so the
// oracle and the heuristic vouch for each other.
//
//   rainbow_oracle --model resnet18 --glb 64
//   rainbow_oracle --model mobilenet --glb 64,256 --objective both
//   rainbow_oracle --small-set --strict          # the CI gap gate
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "analysis/stream_analyzer.hpp"
#include "codegen/lower.hpp"
#include "core/manager.hpp"
#include "model/parser.hpp"
#include "model/zoo/zoo.hpp"
#include "oracle/oracle.hpp"
#include "util/table.hpp"
#include "validate/plan_validator.hpp"

namespace {

using namespace rainbow;

struct CaseResult {
  std::string model;
  count_t glb_kb = 0;
  core::Objective objective = core::Objective::kAccesses;
  double heuristic_cost = 0.0;
  double oracle_cost = 0.0;
  double lower_bound = 0.0;
  double gap = 0.0;
  bool exact = false;
  std::uint64_t nodes = 0;
  std::uint64_t pruned = 0;
  std::uint64_t placement_rejections = 0;
  std::size_t diag_errors = 0;
  std::size_t diag_warnings = 0;
  bool consistent = true;  ///< oracle <= heuristic on the primary metric
};

std::vector<count_t> parse_kb_list(const std::string& csv) {
  std::vector<count_t> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const auto comma = csv.find(',', start);
    const std::string item =
        csv.substr(start, comma == std::string::npos ? csv.size() - start
                                                     : comma - start);
    if (!item.empty()) {
      out.push_back(std::strtoull(item.c_str(), nullptr, 10));
    }
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  return out;
}

/// Validates `plan` and statically analyzes its lowering, folding the
/// diagnostic counts into `result` and echoing errors to stderr.
void cross_check(const core::ExecutionPlan& plan, const model::Network& net,
                 const core::EstimatorOptions& estimator, CaseResult& result) {
  validate::ValidatorOptions voptions;
  voptions.estimator = estimator;
  const validate::PlanValidator validator(voptions);
  const validate::ValidationReport vreport = validator.validate(plan, net);
  result.diag_errors += vreport.error_count();
  result.diag_warnings += vreport.warning_count();
  for (const auto& d : vreport.diagnostics()) {
    if (d.severity == validate::Severity::kError) {
      std::cerr << "  [" << plan.scheme() << "] " << d.message() << '\n';
    }
  }
  if (plan.feasible()) {
    const auto program = codegen::lower(plan, net);
    const auto analysis = analysis::analyze_lowering(program, plan, net);
    result.diag_errors += analysis.report.error_count();
    result.diag_warnings += analysis.report.warning_count();
    for (const auto& d : analysis.report.diagnostics()) {
      if (d.severity == validate::Severity::kError) {
        std::cerr << "  [" << plan.scheme() << "] " << d.message() << '\n';
      }
    }
  }
}

void write_json(const std::vector<CaseResult>& results, std::ostream& os) {
  os.precision(17);  // doubles must round-trip (golden fixtures diff them)
  os << "{\n  \"cases\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CaseResult& r = results[i];
    os << "    {\"model\": \"" << r.model << "\", \"glb_kb\": " << r.glb_kb
       << ", \"objective\": \"" << core::to_string(r.objective)
       << "\", \"heuristic_cost\": " << r.heuristic_cost
       << ", \"oracle_cost\": " << r.oracle_cost
       << ", \"lower_bound\": " << r.lower_bound
       << ", \"gap_vs_oracle\": " << r.gap
       << ", \"exact\": " << (r.exact ? "true" : "false")
       << ", \"nodes_expanded\": " << r.nodes
       << ", \"nodes_pruned\": " << r.pruned
       << ", \"placement_rejections\": " << r.placement_rejections
       << ", \"diag_errors\": " << r.diag_errors
       << ", \"diag_warnings\": " << r.diag_warnings << "}"
       << (i + 1 < results.size() ? "," : "") << '\n';
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> model_names;
  std::vector<count_t> glb_kbs = {64};
  int width = 8;
  int batch = 1;
  std::string objective_arg = "accesses";
  std::uint64_t budget = 0;
  bool interlayer = true;
  bool prefetch = true;
  bool describe = false;
  bool strict = false;
  std::optional<std::string> json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << flag << '\n';
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--model") {
      model_names.push_back(next());
    } else if (flag == "--glb") {
      glb_kbs = parse_kb_list(next());
    } else if (flag == "--width") {
      width = std::atoi(next().c_str());
    } else if (flag == "--batch") {
      batch = std::atoi(next().c_str());
    } else if (flag == "--objective") {
      objective_arg = next();
    } else if (flag == "--budget") {
      budget = std::strtoull(next().c_str(), nullptr, 10);
    } else if (flag == "--no-interlayer") {
      interlayer = false;
    } else if (flag == "--no-prefetch") {
      prefetch = false;
    } else if (flag == "--describe") {
      describe = true;
    } else if (flag == "--strict") {
      strict = true;
    } else if (flag == "--json") {
      json_path = next();
    } else if (flag == "--small-set") {
      // The CI gap gate: the networks whose joint space the search closes
      // exactly in well under a second each, under both objectives.
      model_names.insert(model_names.end(), {"resnet18", "mobilenet"});
      glb_kbs = {64, 256};
      objective_arg = "both";
    } else {
      std::cerr << "usage: " << argv[0]
                << " --model <zoo-name|file.model> [--model ...] |"
                   " --small-set\n"
                   "  [--glb kB[,kB...]] [--width bits] [--batch N]\n"
                   "  [--objective accesses|latency|both] [--budget nodes]\n"
                   "  [--no-interlayer] [--no-prefetch] [--describe]\n"
                   "  [--strict] [--json path]\n";
      return flag == "--help" || flag == "-h" ? 0 : 2;
    }
  }
  if (model_names.empty()) {
    std::cerr << "--model (or --small-set) is required\n";
    return 2;
  }
  std::vector<core::Objective> objectives;
  if (objective_arg == "accesses") {
    objectives = {core::Objective::kAccesses};
  } else if (objective_arg == "latency") {
    objectives = {core::Objective::kLatency};
  } else if (objective_arg == "both") {
    objectives = {core::Objective::kAccesses, core::Objective::kLatency};
  } else {
    std::cerr << "unknown objective '" << objective_arg << "'\n";
    return 2;
  }

  try {
    std::vector<CaseResult> results;
    bool strict_failure = false;
    util::Table table({"model", "GLB kB", "objective", "heuristic", "oracle",
                       "gap %", "exact", "nodes", "pruned", "plc-rej",
                       "diags"});
    for (const std::string& name : model_names) {
      const model::Network net = std::filesystem::exists(name)
                                     ? model::load_network(name)
                                     : model::zoo::by_name(name);
      for (count_t kb : glb_kbs) {
        arch::AcceleratorSpec spec = arch::paper_spec(util::kib(kb));
        spec.data_width_bits = width;

        core::ManagerOptions moptions;
        moptions.analyzer.allow_prefetch = prefetch;
        moptions.analyzer.estimator.batch = batch;
        moptions.interlayer_reuse = interlayer;
        const core::MemoryManager manager(spec, moptions);

        oracle::OracleOptions ooptions;
        ooptions.analyzer = moptions.analyzer;
        ooptions.interlayer = interlayer;
        ooptions.node_budget = budget;
        const oracle::OraclePlanner planner(spec, ooptions);

        for (core::Objective objective : objectives) {
          const core::ExecutionPlan heuristic = manager.plan(net, objective);
          const oracle::OracleResult best = planner.plan(net, objective);

          CaseResult r;
          r.model = net.name();
          r.glb_kb = kb;
          r.objective = objective;
          r.heuristic_cost = oracle::plan_cost(heuristic).primary;
          r.oracle_cost = best.best_cost.primary;
          r.lower_bound = best.lower_bound;
          r.gap = oracle::optimality_gap(r.heuristic_cost, r.oracle_cost);
          r.exact = best.exact;
          r.nodes = best.nodes_expanded;
          r.pruned = best.nodes_pruned;
          r.placement_rejections = best.placement_rejections;
          r.consistent = r.oracle_cost <= r.heuristic_cost;
          cross_check(heuristic, net, moptions.analyzer.estimator, r);
          cross_check(best.plan, net, moptions.analyzer.estimator, r);
          results.push_back(r);

          table.add_row(
              {r.model, std::to_string(kb),
               std::string(core::to_string(objective)),
               util::fmt(r.heuristic_cost, 0), util::fmt(r.oracle_cost, 0),
               util::fmt(100.0 * r.gap, 3), r.exact ? "y" : "bounded",
               std::to_string(r.nodes), std::to_string(r.pruned),
               std::to_string(r.placement_rejections),
               std::to_string(r.diag_errors + r.diag_warnings)});

          if (!r.consistent) {
            std::cerr << "INCONSISTENT: heuristic beats the oracle on "
                      << r.model << " @ " << kb << " kB ("
                      << core::to_string(objective)
                      << ") — the search space is missing the heuristic's "
                         "plan\n";
            strict_failure = true;
          }
          if (strict && (r.diag_errors > 0 || !r.exact)) {
            strict_failure = true;
          }
          if (describe) {
            std::cout << manager.describe(best.plan, net);
          }
        }
      }
    }
    std::cout << "planning oracle vs Algorithm 1 (" << results.size()
              << " case(s); gap = (heuristic - oracle) / oracle on the "
                 "primary metric)\n";
    table.print(std::cout);
    if (json_path) {
      std::ofstream out(*json_path);
      if (!out) {
        std::cerr << "cannot open " << *json_path << '\n';
        return 1;
      }
      write_json(results, out);
    }
    if (strict_failure) {
      std::cerr << (strict ? "--strict: " : "")
                << "oracle gate failed (inexact search, validator/analyzer "
                   "error, or consistency violation)\n";
      return 1;
    }
  } catch (const std::exception& e) {
    std::cerr << "rainbow_oracle: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
