// rainbowd: resident planning-as-a-service daemon.  Keeps parsed networks
// and accelerator specs in memory with per-model evaluation caches, so a
// fleet of clients re-planning the same models pays the parse and analysis
// cost once instead of per invocation (docs/serving.md).
//
//   rainbowd --socket /tmp/rainbowd.sock --preload-zoo
//   rainbowd --port 0 --threads 8
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>

#include "serve/server.hpp"
#include "serve/service.hpp"

namespace {

using namespace rainbow;

struct CliOptions {
  std::string socket_path;
  int port = -1;
  std::size_t threads = 0;
  bool preload_zoo = false;
  std::size_t cache_entries = 1 << 20;
};

[[noreturn]] void usage(const char* argv0, int code) {
  std::ostream& os = code == 0 ? std::cout : std::cerr;
  os << "usage: " << argv0 << " (--socket <path> | --port <N>) [options]\n"
     << "  --socket <path>     listen on a unix-domain socket\n"
     << "  --port <N>          listen on loopback TCP (0 = ephemeral port)\n"
     << "  --threads <N>       planning workers (default: hardware)\n"
     << "  --preload-zoo       register every built-in zoo model at start\n"
     << "  --cache-entries <N> per-model evaluation-cache bound\n"
     << "                      (default 1048576)\n"
     << "SIGTERM / SIGINT shut the daemon down gracefully (in-flight\n"
     << "requests drain first); the 'shutdown' verb does the same.\n";
  std::exit(code);
}

CliOptions parse(int argc, char** argv) {
  CliOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&](const char* what) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << what << "\n";
        usage(argv[0], 2);
      }
      return argv[++i];
    };
    if (flag == "--socket") {
      opt.socket_path = next("--socket");
    } else if (flag == "--port") {
      opt.port = std::atoi(next("--port").c_str());
    } else if (flag == "--threads") {
      opt.threads = std::strtoull(next("--threads").c_str(), nullptr, 10);
    } else if (flag == "--preload-zoo") {
      opt.preload_zoo = true;
    } else if (flag == "--cache-entries") {
      opt.cache_entries =
          std::strtoull(next("--cache-entries").c_str(), nullptr, 10);
    } else if (flag == "--help" || flag == "-h") {
      usage(argv[0], 0);
    } else {
      std::cerr << "unknown flag '" << flag << "'\n";
      usage(argv[0], 2);
    }
  }
  if (opt.socket_path.empty() && opt.port < 0) {
    std::cerr << "one of --socket or --port is required\n";
    usage(argv[0], 2);
  }
  return opt;
}

serve::Server* g_server = nullptr;

// Async-signal-safe: request_stop() only stores an atomic flag.
void on_signal(int) {
  if (g_server != nullptr) {
    g_server->request_stop();
  }
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions opt = parse(argc, argv);
  try {
    serve::ServiceOptions service_options;
    service_options.preload_zoo = opt.preload_zoo;
    service_options.cache_entries = opt.cache_entries;
    serve::PlanningService service(service_options);

    serve::ServerConfig config;
    config.unix_path = opt.socket_path;
    config.tcp_port = opt.port;
    config.threads = opt.threads;
    serve::Server server(service, config);
    g_server = &server;
    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);
    std::signal(SIGPIPE, SIG_IGN);

    server.start();
    if (!opt.socket_path.empty()) {
      std::cout << "rainbowd: listening on unix " << opt.socket_path
                << std::endl;
    } else {
      std::cout << "rainbowd: listening on tcp port " << server.port()
                << std::endl;
    }
    if (opt.preload_zoo) {
      std::cout << "rainbowd: preloaded " << service.registry().size()
                << " zoo models" << std::endl;
    }

    const std::uint64_t served = server.wait();
    g_server = nullptr;
    const serve::ServiceStats stats = service.stats();
    std::cout << "rainbowd: served " << served << " requests ("
              << stats.plan_requests << " plans, " << stats.coalesced
              << " coalesced, " << stats.errors << " errors)" << std::endl;
  } catch (const std::exception& e) {
    std::cerr << "rainbowd: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
