// rainbow_client: command-line client for rainbowd (docs/serving.md).
// Translates flags into protocol headers, sends one request, and prints
// the response — so every daemon verb is scriptable, and a daemon plan
// can be diffed byte-for-byte against one-shot rainbow_plan output:
//
//   rainbow_client --socket /tmp/rainbowd.sock ping
//   rainbow_client --socket /tmp/rainbowd.sock upload --file mynet.model
//   rainbow_client --socket /tmp/rainbowd.sock plan --model resnet18 \
//       --glb 64 --plan-out daemon.plan
//   rainbow_client --port 7411 stats
//   rainbow_client --socket /tmp/rainbowd.sock shutdown
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "serve/client.hpp"

namespace {

using namespace rainbow;

[[noreturn]] void usage(const char* argv0, int code) {
  std::ostream& os = code == 0 ? std::cout : std::cerr;
  os << "usage: " << argv0
     << " (--socket <path> | --port <N>) <verb> [options]\n"
     << "verbs:\n"
     << "  ping                          round-trip check\n"
     << "  upload --file <x.model>       register a model\n"
     << "            [--name <n>] [--replace]\n"
     << "  upload-spec --file <x.spec>   register an accelerator spec\n"
     << "            [--name <n>] [--replace]\n"
     << "  list                          registered models and specs\n"
     << "  evict (--model <n> | --spec <n>)\n"
     << "  stats                         request + cache statistics\n"
     << "  plan --model <n> [planning options]\n"
     << "  dse --model <n> --glb <kb,kb,..> [--widths b,b] [--batches n,n]\n"
     << "  validate --model <n> --plan <file.plan>\n"
     << "  analyze --model <n> --plan <file.plan>\n"
     << "  shutdown                      graceful daemon shutdown\n"
     << "planning options (mirror rainbow_plan flags):\n"
     << "  --glb <kB> --width <bits> --batch <N> --objective <o> --hom\n"
     << "  --interlayer --no-prefetch --no-padding --spec <name>\n"
     << "  --validate --analyze --plan-out <path>\n";
  std::exit(code);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

struct CliOptions {
  std::string socket_path;
  int port = -1;
  serve::Request request;
  std::optional<std::string> plan_out;
  bool body_to_stdout = false;  // print the response body verbatim
};

CliOptions parse(int argc, char** argv) {
  CliOptions opt;
  std::string file_path;
  std::string plan_path;
  int i = 1;
  auto next = [&](const char* what) -> std::string {
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << what << "\n";
      usage(argv[0], 2);
    }
    return argv[++i];
  };
  for (; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--socket") {
      opt.socket_path = next("--socket");
    } else if (flag == "--port") {
      opt.port = std::atoi(next("--port").c_str());
    } else if (flag == "--file") {
      file_path = next("--file");
    } else if (flag == "--plan") {
      plan_path = next("--plan");
    } else if (flag == "--plan-out") {
      opt.plan_out = next("--plan-out");
    } else if (flag == "--name") {
      opt.request.headers["name"] = next("--name");
    } else if (flag == "--replace") {
      opt.request.headers["replace"] = "1";
    } else if (flag == "--model") {
      opt.request.headers["model"] = next("--model");
    } else if (flag == "--spec") {
      opt.request.headers["spec"] = next("--spec");
    } else if (flag == "--glb") {
      opt.request.headers["glb_kb"] = next("--glb");
    } else if (flag == "--width") {
      opt.request.headers["width_bits"] = next("--width");
    } else if (flag == "--widths") {
      opt.request.headers["width_bits"] = next("--widths");
    } else if (flag == "--batch") {
      opt.request.headers["batch"] = next("--batch");
    } else if (flag == "--batches") {
      opt.request.headers["batch"] = next("--batches");
    } else if (flag == "--objective") {
      opt.request.headers["objective"] = next("--objective");
    } else if (flag == "--hom") {
      opt.request.headers["scheme"] = "hom";
    } else if (flag == "--interlayer") {
      opt.request.headers["interlayer"] = "1";
    } else if (flag == "--no-prefetch") {
      opt.request.headers["prefetch"] = "0";
    } else if (flag == "--no-padding") {
      opt.request.headers["padded"] = "0";
    } else if (flag == "--validate") {
      opt.request.headers["validate"] = "1";
    } else if (flag == "--analyze") {
      opt.request.headers["analyze"] = "1";
    } else if (flag == "--help" || flag == "-h") {
      usage(argv[0], 0);
    } else if (!flag.empty() && flag[0] == '-') {
      std::cerr << "unknown flag '" << flag << "'\n";
      usage(argv[0], 2);
    } else if (opt.request.verb.empty()) {
      opt.request.verb = flag == "upload-spec" ? "upload_spec" : flag;
    } else {
      std::cerr << "unexpected argument '" << flag << "'\n";
      usage(argv[0], 2);
    }
  }
  if (opt.request.verb.empty()) {
    std::cerr << "a verb is required\n";
    usage(argv[0], 2);
  }
  if (opt.socket_path.empty() && opt.port < 0) {
    std::cerr << "one of --socket or --port is required\n";
    usage(argv[0], 2);
  }
  if (opt.request.verb == "upload" || opt.request.verb == "upload_spec") {
    if (file_path.empty()) {
      std::cerr << opt.request.verb << " needs --file\n";
      usage(argv[0], 2);
    }
    opt.request.body = read_file(file_path);
  }
  if (opt.request.verb == "validate" || opt.request.verb == "analyze") {
    if (plan_path.empty()) {
      std::cerr << opt.request.verb << " needs --plan\n";
      usage(argv[0], 2);
    }
    opt.request.body = read_file(plan_path);
  }
  opt.body_to_stdout = opt.request.verb == "list" ||
                       opt.request.verb == "stats" ||
                       opt.request.verb == "dse" ||
                       (opt.request.verb == "plan" && !opt.plan_out);
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliOptions opt = parse(argc, argv);
    serve::Client client = opt.socket_path.empty()
                               ? serve::Client::connect_tcp(opt.port)
                               : serve::Client::connect_unix(opt.socket_path);
    const serve::Response response = client.call(opt.request);
    if (!response.ok) {
      std::cerr << "rainbow_client: " << response.get("message", "error")
                << '\n';
      if (!response.body.empty()) {
        std::cerr << response.body;
      }
      return 1;
    }
    for (const auto& [key, value] : response.headers) {
      std::cerr << key << ": " << value << '\n';
    }
    if (opt.plan_out) {
      std::ofstream out(*opt.plan_out, std::ios::binary);
      if (!out) {
        std::cerr << "rainbow_client: cannot open " << *opt.plan_out << '\n';
        return 1;
      }
      out << response.body;
    } else if (opt.body_to_stdout && !response.body.empty()) {
      std::cout << response.body;
    }
  } catch (const std::exception& e) {
    std::cerr << "rainbow_client: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
