// rainbow_verify: developer tool running the full cross-validation chain
// on one layer shape — estimator vs engine vs codegen interpreter on the
// accounting side, golden reference vs policy executors vs the
// register-level systolic array on the numerical side.  Exit code 0 iff
// everything agrees.
//
//   rainbow_verify --layer CV,14,14,32,3,3,64,1,1 [--glb 256] [--seed 7]
//   rainbow_verify                      (a built-in default layer)
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "codegen/interpret.hpp"
#include "codegen/lower.hpp"
#include "core/estimator.hpp"
#include "engine/engine.hpp"
#include "model/parser.hpp"
#include "ref/exec_backend.hpp"
#include "ref/policy_exec.hpp"
#include "scalesim/systolic.hpp"
#include "systolic/conv_driver.hpp"
#include "util/table.hpp"
#include "validate/plan_validator.hpp"

namespace {

using namespace rainbow;

model::Network parse_layer_spec(const std::string& spec_str) {
  // kind,ih,iw,ci,fh,fw,nf,s,p — reuse the model parser by wrapping the
  // layer in a one-line network.
  const std::string text =
      "network, verify\n" +
      spec_str.substr(0, spec_str.find(',')) + ", layer, " +
      spec_str.substr(spec_str.find(',') + 1) + "\n";
  return model::parse_network(text);
}

}  // namespace

int main(int argc, char** argv) {
  std::string layer_spec = "CV,14,14,16,3,3,32,1,1";
  count_t glb_kb = 256;
  std::uint64_t seed = 7;
  int threads = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--layer" && i + 1 < argc) {
      layer_spec = argv[++i];
    } else if (flag == "--glb" && i + 1 < argc) {
      glb_kb = std::strtoull(argv[++i], nullptr, 10);
    } else if (flag == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (flag == "--exec-backend" && i + 1 < argc) {
      try {
        ref::set_default_exec_backend(ref::exec_backend_from_string(argv[++i]));
      } catch (const std::exception& e) {
        std::cerr << "rainbow_verify: " << e.what() << '\n';
        return 2;
      }
    } else if (flag == "--threads" && i + 1 < argc) {
      threads = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--layer kind,ih,iw,ci,fh,fw,nf,s,p] [--glb kB] "
                   "[--seed N] [--exec-backend naive|blocked] [--threads N]\n";
      return 2;
    }
  }

  try {
    const model::Network net = parse_layer_spec(layer_spec);
    const model::Layer& layer = net.layer(0);
    const auto spec = arch::paper_spec(util::kib(glb_kb));
    std::cout << "verifying " << layer << " @ " << glb_kb << " kB\n\n";

    const core::Estimator estimator(spec);
    const engine::Engine engine(spec);
    const codegen::Interpreter interpreter(spec);
    const validate::PlanValidator validator{validate::ValidatorOptions{}};
    const auto operands = ref::random_operands(layer, seed);
    const auto golden = ref::reference_forward(layer, operands);

    bool all_ok = true;
    util::Table table({"policy", "accounting", "numerics", "footprint",
                       "invariants"});
    for (core::Policy p : core::kAllPolicies) {
      for (bool prefetch : {false, true}) {
        const auto est = estimator.estimate(layer, p, prefetch);
        if (!est.feasible) {
          continue;
        }
        // Accounting: engine + lowered stream must land on the estimate.
        const auto exec = engine.execute_layer(layer, est.choice);
        core::LayerAssignment assignment;
        assignment.layer_index = 0;
        assignment.estimate = est;
        codegen::Program program;
        program.spec = spec;
        program.layers.push_back(codegen::lower_layer(layer, 0, assignment));
        const auto run = interpreter.run(program);
        const bool accounting = exec.traffic.total() == est.accesses() &&
                                run.total_accesses == est.accesses();

        // Numerics: the naive loop nest must reproduce the reference
        // inside its claimed footprint — and whichever backend is
        // selected must agree bit for bit, reporting the same peaks.
        ref::BufferPeaks peaks;
        const auto computed =
            ref::execute_policy(layer, est.choice, operands, &peaks);
        ref::BufferPeaks backend_peaks;
        const auto backend_out = ref::execute_policy(
            layer, est.choice, operands, &backend_peaks,
            ref::ExecOptions{.backend = ref::default_exec_backend(),
                             .threads = threads});
        const bool numerics = computed == golden && backend_out == golden &&
                              backend_peaks == peaks;
        const auto fp = core::working_footprint(layer, est.choice);
        const bool bounded = peaks.ifmap <= fp.ifmap &&
                             peaks.filter <= fp.filter &&
                             peaks.ofmap <= fp.ofmap;

        // Invariants: a one-layer plan built from this choice must survive
        // the full re-derivation in the validator.
        core::ExecutionPlan plan("verify", net.name(), spec,
                                 core::Objective::kAccesses);
        core::LayerAssignment slot;
        slot.layer_index = 0;
        slot.estimate = est;
        plan.add(slot);
        const auto report = validator.validate(plan, net);
        const bool invariants = report.ok();
        if (!invariants) {
          std::cerr << report.summary();
        }
        std::ostringstream label;
        label << est.choice;
        table.add_row({label.str(), accounting ? "ok" : "MISMATCH",
                       numerics ? "ok" : "MISMATCH",
                       bounded ? "ok" : "EXCEEDED",
                       invariants ? "ok" : "VIOLATED"});
        all_ok = all_ok && accounting && numerics && bounded && invariants;
      }
    }
    table.print(std::cout);

    // The register-level array (naive = stepped PE registers), and the
    // blocked fast path, which must return the identical ConvRun.
    const auto conv = systolic::run_conv(layer, operands, spec,
                                         ref::ExecBackend::kNaive, threads);
    const auto conv_fast = systolic::run_conv(
        layer, operands, spec, ref::ExecBackend::kBlocked, threads);
    const bool array_ok = conv.ofmap == golden &&
                          conv.cycles == scalesim::compute_cycles(layer, spec);
    const bool fast_ok = conv_fast.ofmap == golden &&
                         conv_fast.cycles == conv.cycles &&
                         conv_fast.folds == conv.folds;
    std::cout << "\nsystolic array: "
              << (array_ok ? "ok" : "MISMATCH") << " (" << conv.cycles
              << " cycles, analytic "
              << scalesim::compute_cycles(layer, spec) << ")\n";
    std::cout << "blocked backend: " << (fast_ok ? "ok" : "MISMATCH")
              << " (backend " << ref::to_string(ref::default_exec_backend())
              << ", " << threads << " thread(s))\n";
    all_ok = all_ok && array_ok && fast_ok;

    std::cout << (all_ok ? "\nALL CHECKS PASSED\n" : "\nFAILURES FOUND\n");
    return all_ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "rainbow_verify: " << e.what() << '\n';
    return 1;
  }
}
