// rainbow_plan: command-line front end of the memory manager (the paper's
// Figure 4 flow as a tool).  Takes a CNN description — a built-in zoo name
// or a .model text file — and accelerator specifications, and emits the
// execution plan, optionally as a per-layer table, CSV, or a lowered
// command stream.
//
//   rainbow_plan --model resnet18 --glb 64 --objective accesses --describe
//   rainbow_plan --model mynet.model --glb 256 --width 16 --interlayer
//   rainbow_plan --model mobilenet --glb 64 --lower 2
//   rainbow_plan --model googlenet --glb 64 --baseline
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "analysis/race.hpp"
#include "analysis/stream_analyzer.hpp"
#include "analysis/streamopt.hpp"
#include "codegen/lower.hpp"
#include "codegen/print.hpp"
#include "core/energy.hpp"
#include "core/eval_cache.hpp"
#include "core/manager.hpp"
#include "core/plan_io.hpp"
#include "core/report.hpp"
#include "engine/timeline.hpp"
#include "model/parser.hpp"
#include "model/zoo/zoo.hpp"
#include "scalesim/simulator.hpp"
#include "util/table.hpp"
#include "validate/plan_validator.hpp"

namespace {

using namespace rainbow;

struct CliOptions {
  std::string model;
  count_t glb_kb = 64;
  int width_bits = 8;
  int batch = 1;
  core::Objective objective = core::Objective::kAccesses;
  bool homogeneous = false;
  bool interlayer = false;
  bool no_prefetch = false;
  bool no_padding = false;
  bool no_eval_cache = false;
  bool cache_stats = false;
  bool parallel = false;
  bool describe = false;
  bool baseline = false;
  bool validate = false;
  bool analyze = false;
  bool optimize = false;
  std::optional<std::size_t> explain_layer;  // per-layer candidate table
  std::optional<std::size_t> timeline_layer; // ASCII occupancy chart
  std::optional<std::size_t> lower_layers;  // print the command stream
  std::optional<std::string> csv_path;
  std::optional<std::string> json_path;
  std::optional<std::string> plan_out;  // save the decisions
  std::optional<std::string> plan_in;   // load + validate instead of planning
};

[[noreturn]] void usage(const char* argv0, int code) {
  std::ostream& os = code == 0 ? std::cout : std::cerr;
  os << "usage: " << argv0 << " --model <zoo-name|file.model> [options]\n"
     << "  --glb <kB>          unified scratchpad size (default 64)\n"
     << "  --width <bits>      element width, multiple of 8 (default 8)\n"
     << "  --batch <N>         inference batch size (default 1)\n"
     << "  --objective <o>     accesses | latency (default accesses)\n"
     << "  --hom               best homogeneous plan instead of Het\n"
     << "  --interlayer        enable inter-layer reuse\n"
     << "  --no-prefetch       disable the +p policy variants\n"
     << "  --no-padding        exclude ifmap padding from traffic\n"
     << "  --no-eval-cache     disable the layer-evaluation memo cache\n"
     << "  --cache-stats       print evaluation-cache hit/miss statistics\n"
     << "  --parallel          plan layers in parallel (same plan, faster)\n"
     << "  --describe          per-layer plan table\n"
     << "  --validate          re-derive every plan invariant; non-zero exit\n"
     << "                      on any diagnostic (see docs/validation.md)\n"
     << "  --analyze           lower the plan and statically analyze the\n"
     << "                      command stream (docs/static_analysis.md)\n"
     << "  --optimize          run the certified stream optimizer on the\n"
     << "                      lowered plan and report the deltas\n"
     << "  --explain <layer>   candidate table for one layer index\n"
     << "  --timeline <layer>  DRAM/compute occupancy chart for one layer\n"
     << "  --baseline          compare against the fixed-partition baseline\n"
     << "  --lower [N]         print the lowered command stream (N layers)\n"
     << "  --csv <path>        append a machine-readable summary\n"
     << "  --json <path>       write the full plan report as JSON\n"
     << "  --plan-out <path>   save the plan's decisions (.plan format)\n"
     << "  --plan-in <path>    load + validate a saved plan instead of planning\n"
     << "  --list-models       list built-in networks\n";
  std::exit(code);
}

CliOptions parse(int argc, char** argv) {
  CliOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&](const char* what) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << what << "\n";
        usage(argv[0], 2);
      }
      return argv[++i];
    };
    if (flag == "--model") {
      opt.model = next("--model");
    } else if (flag == "--glb") {
      opt.glb_kb = std::strtoull(next("--glb").c_str(), nullptr, 10);
    } else if (flag == "--width") {
      opt.width_bits = std::atoi(next("--width").c_str());
    } else if (flag == "--batch") {
      opt.batch = std::atoi(next("--batch").c_str());
    } else if (flag == "--objective") {
      const std::string o = next("--objective");
      if (o == "accesses") {
        opt.objective = core::Objective::kAccesses;
      } else if (o == "latency") {
        opt.objective = core::Objective::kLatency;
      } else {
        std::cerr << "unknown objective '" << o << "'\n";
        usage(argv[0], 2);
      }
    } else if (flag == "--hom") {
      opt.homogeneous = true;
    } else if (flag == "--interlayer") {
      opt.interlayer = true;
    } else if (flag == "--no-prefetch") {
      opt.no_prefetch = true;
    } else if (flag == "--no-padding") {
      opt.no_padding = true;
    } else if (flag == "--no-eval-cache") {
      opt.no_eval_cache = true;
    } else if (flag == "--cache-stats") {
      opt.cache_stats = true;
    } else if (flag == "--parallel") {
      opt.parallel = true;
    } else if (flag == "--describe") {
      opt.describe = true;
    } else if (flag == "--validate") {
      opt.validate = true;
    } else if (flag == "--analyze") {
      opt.analyze = true;
    } else if (flag == "--optimize") {
      opt.optimize = true;
    } else if (flag == "--explain") {
      opt.explain_layer = std::strtoull(next("--explain").c_str(), nullptr, 10);
    } else if (flag == "--timeline") {
      opt.timeline_layer =
          std::strtoull(next("--timeline").c_str(), nullptr, 10);
    } else if (flag == "--baseline") {
      opt.baseline = true;
    } else if (flag == "--lower") {
      std::size_t layers = 3;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        layers = std::strtoull(argv[++i], nullptr, 10);
      }
      opt.lower_layers = layers;
    } else if (flag == "--csv") {
      opt.csv_path = next("--csv");
    } else if (flag == "--json") {
      opt.json_path = next("--json");
    } else if (flag == "--plan-out") {
      opt.plan_out = next("--plan-out");
    } else if (flag == "--plan-in") {
      opt.plan_in = next("--plan-in");
    } else if (flag == "--list-models") {
      for (const auto& name : model::zoo::model_names()) {
        std::cout << name << '\n';
      }
      std::exit(0);
    } else if (flag == "--help" || flag == "-h") {
      usage(argv[0], 0);
    } else {
      std::cerr << "unknown flag '" << flag << "'\n";
      usage(argv[0], 2);
    }
  }
  if (opt.model.empty()) {
    std::cerr << "--model is required\n";
    usage(argv[0], 2);
  }
  return opt;
}

model::Network load_model(const std::string& name) {
  if (std::filesystem::exists(name)) {
    return model::load_network(name);
  }
  return model::zoo::by_name(name);
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions opt = parse(argc, argv);
  try {
    const model::Network net = load_model(opt.model);

    arch::AcceleratorSpec spec = arch::paper_spec(util::kib(opt.glb_kb));
    spec.data_width_bits = opt.width_bits;
    spec.validate();

    core::ManagerOptions options;
    options.analyzer.allow_prefetch = !opt.no_prefetch;
    options.analyzer.estimator.padded_traffic = !opt.no_padding;
    options.analyzer.estimator.batch = opt.batch;
    std::shared_ptr<core::EvalCache> cache;
    if (!opt.no_eval_cache) {
      cache = std::make_shared<core::EvalCache>();
      options.analyzer.eval_cache = cache;
    }
    options.interlayer_reuse = opt.interlayer;
    options.parallel_planning = opt.parallel;
    const core::MemoryManager manager(spec, options);

    const core::ExecutionPlan plan =
        opt.plan_in
            ? core::load_plan(*opt.plan_in, net, options.analyzer.estimator)
            : (opt.homogeneous ? manager.plan_homogeneous(net, opt.objective)
                               : manager.plan(net, opt.objective));
    const core::EnergyBreakdown energy = core::plan_energy(plan, net);

    std::cout << plan.scheme() << " plan for " << net.name() << " ("
              << net.size() << " layers) @ " << opt.glb_kb << " kB GLB, "
              << opt.width_bits << "-bit, batch " << opt.batch
              << ", objective " << core::to_string(opt.objective) << "\n"
              << "  off-chip:  " << util::fmt(plan.total_access_mb(), 2)
              << " MB (" << util::fmt_count(plan.total_accesses())
              << " elements)\n"
              << "  latency:   "
              << util::fmt(plan.total_latency_cycles() / 1e6, 2)
              << " Mcycles (compute floor "
              << util::fmt(plan.total_compute_cycles() / 1e6, 2) << ")\n"
              << "  energy:    " << util::fmt(energy.total_mj(), 2)
              << " mJ (DRAM " << util::fmt(energy.dram_pj * 1e-9, 2)
              << ")\n"
              << "  prefetch:  "
              << util::fmt(100.0 * plan.prefetch_coverage(), 0)
              << "% of layers"
              << (opt.interlayer
                      ? ", inter-layer links: " +
                            std::to_string(plan.interlayer_links())
                      : std::string())
              << '\n';

    if (opt.validate) {
      validate::ValidatorOptions voptions;
      voptions.estimator = options.analyzer.estimator;
      const validate::PlanValidator validator(voptions);
      const validate::ValidationReport report = validator.validate(plan, net);
      if (report.empty()) {
        std::cout << "  validate:  ok (all invariants hold)\n";
      } else {
        std::cout << "  validate:  " << report.error_count() << " error(s), "
                  << report.warning_count() << " warning(s)\n";
        for (const auto& d : report.diagnostics()) {
          std::cout << "    " << d.message() << '\n';
        }
      }
      if (!report.ok()) {
        return 1;
      }
    }

    if (opt.analyze) {
      const codegen::Program program = codegen::lower(plan, net);
      analysis::AnalysisResult result =
          analysis::analyze_lowering(program, plan, net);
      // The stream invariants are necessary but not sufficient: also prove
      // the overlap schedule race-free and its critical path consistent
      // with the latency the plan was costed with.
      const analysis::DepGraph graph = analysis::DepGraph::build(program);
      const analysis::RaceReport races = analysis::analyze_races(graph);
      const analysis::CriticalPathCheck cp =
          analysis::check_critical_path(graph, program, plan, net);
      result.report.merge(races.report);
      result.report.merge(cp.report);
      if (result.report.empty()) {
        std::cout << "  analyze:   ok (" << result.commands << " commands, "
                  << result.regions << " regions, peak "
                  << result.peak_live_elems << "/" << result.capacity_elems
                  << " elems; race-free, critical path "
                  << cp.path.total_cycles << " cycles)\n";
      } else {
        std::cout << "  analyze:   " << result.report.error_count()
                  << " error(s), " << result.report.warning_count()
                  << " warning(s)\n";
        for (const auto& d : result.report.diagnostics()) {
          std::cout << "    " << d.message() << '\n';
        }
      }
      if (!result.ok()) {
        return 1;
      }
    }

    if (opt.optimize) {
      const codegen::Program program = codegen::lower(plan, net);
      const analysis::OptimizeResult result =
          analysis::optimize_program(program, plan, net);
      std::cout << "  optimize:  "
                << (result.certified ? "certified" : "REJECTED")
                << ", critical path " << result.original_cycles << " -> "
                << result.optimized_cycles << " cycles, stalls "
                << result.original_stall_cycles << " -> "
                << result.optimized_stall_cycles << " ("
                << result.layers_reordered << " layer(s) reordered, "
                << result.commands_moved << " command(s) moved, "
                << result.barriers_elided << " barrier(s) elided, "
                << result.transfers_coalesced << " transfer(s) coalesced)\n";
      for (const auto& d : result.report.diagnostics()) {
        std::cout << "    " << d.message() << '\n';
      }
      if (!result.ok()) {
        return 1;
      }
    }

    if (opt.cache_stats) {
      if (cache) {
        const core::EvalCacheStats stats = cache->stats();
        std::cout << "  cache:     " << stats.lookups << " lookups, "
                  << stats.hits << " hits ("
                  << util::fmt(100.0 * stats.hit_rate(), 1) << "%), "
                  << stats.inserts << " inserts, " << stats.evictions
                  << " evictions, " << stats.entries << " resident (~"
                  << util::fmt(stats.approx_mb(), 2) << " MB)\n";
      } else {
        std::cout << "  cache:     disabled (--no-eval-cache)\n";
      }
    }

    if (opt.describe) {
      std::cout << '\n' << manager.describe(plan, net);
    }

    if (opt.explain_layer) {
      if (*opt.explain_layer >= net.size()) {
        std::cerr << "rainbow_plan: --explain layer index out of range\n";
        return 1;
      }
      const model::Layer& layer = net.layer(*opt.explain_layer);
      std::cout << "\ncandidates for layer " << *opt.explain_layer << " (";
      std::cout << layer << "):\n";
      util::Table table({"candidate", "memory kB", "accesses", "latency cyc",
                         "feasible", "chosen"});
      for (const auto& c :
           manager.analyzer().explain(layer, opt.objective)) {
        std::ostringstream label;
        label << c.estimate.choice;
        table.add_row(
            {label.str(),
             util::fmt(static_cast<double>(c.estimate.memory_elems() *
                                           spec.element_bytes()) /
                       1024.0),
             util::fmt_count(c.estimate.accesses()),
             util::fmt_count(static_cast<unsigned long long>(
                 c.estimate.latency_cycles)),
             c.estimate.feasible ? "yes" : "no", c.chosen ? "<-- " : ""});
      }
      table.print(std::cout);
    }

    if (opt.timeline_layer) {
      if (*opt.timeline_layer >= net.size()) {
        std::cerr << "rainbow_plan: --timeline layer index out of range\n";
        return 1;
      }
      const auto& assignment = plan.assignment(*opt.timeline_layer);
      std::cout << '\n'
                << engine::render_timeline(spec,
                                           net.layer(*opt.timeline_layer),
                                           assignment.estimate.choice);
      const auto stats = engine::layer_timeline(
          spec, net.layer(*opt.timeline_layer), assignment.estimate.choice);
      std::cout << "  DRAM busy " << util::fmt(100.0 * stats.dram_utilization())
                << "%, compute busy "
                << util::fmt(100.0 * stats.compute_utilization())
                << "%, exposed transfer "
                << util::fmt_count(static_cast<unsigned long long>(
                       stats.exposed_transfer_cycles()))
                << " cycles\n";
    }

    if (opt.baseline) {
      std::cout << "\nfixed-partition baseline (SCALE-Sim-style, OS):\n";
      for (const auto& part : scalesim::paper_partitions()) {
        const scalesim::Simulator sim(spec, part);
        const auto run = sim.run(net);
        std::cout << "  " << part.label() << ": "
                  << util::fmt(run.access_mb(spec), 2) << " MB, "
                  << util::fmt(static_cast<double>(run.total_cycles) / 1e6, 2)
                  << " Mcycles (zero-stall)\n";
      }
    }

    if (opt.lower_layers) {
      const codegen::Program program = codegen::lower(plan, net);
      std::cout << '\n';
      codegen::print(program, std::cout,
                     {.compress_loops = true, .max_layers = *opt.lower_layers});
    }

    if (opt.plan_out) {
      core::save_plan(plan, *opt.plan_out);
    }

    if (opt.json_path) {
      std::ofstream out(*opt.json_path);
      if (!out) {
        std::cerr << "cannot open " << *opt.json_path << '\n';
        return 1;
      }
      core::PlanReport report = core::build_report(plan, net);
      if (cache) {
        report.eval_cache = cache->stats();
      }
      core::write_json(report, out);
    }

    if (opt.csv_path) {
      std::ofstream out(*opt.csv_path, std::ios::app);
      if (!out) {
        std::cerr << "cannot open " << *opt.csv_path << '\n';
        return 1;
      }
      out << net.name() << ',' << plan.scheme() << ',' << opt.glb_kb << ','
          << opt.width_bits << ',' << opt.batch << ','
          << core::to_string(opt.objective) << ',' << plan.total_accesses()
          << ',' << util::fmt(plan.total_latency_cycles(), 0) << ','
          << util::fmt(energy.total_mj(), 4) << '\n';
    }
  } catch (const std::exception& e) {
    std::cerr << "rainbow_plan: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
