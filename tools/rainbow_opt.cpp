// rainbow_opt: the certified command-stream optimizer as a CLI gate.  For
// every requested (model, GLB, policy, prefetch) combination the tool
// plans, lowers, and runs the translation-validated optimizer — DMA
// reordering, barrier elision, DMA coalescing — then reports the
// critical-path and stall deltas.  Every emitted stream passed the full
// certification stack (certified reorder, race freedom, S-code analysis,
// differential interpretation, latency re-cost); a rejected candidate is
// an O0xx error and a nonzero exit, which is what CI pins.
//
//   rainbow_opt --all-zoo --glb 64,256 --strict
//   rainbow_opt --all-zoo --glb 64,256 --strict --format json > report.json
//   rainbow_opt --model resnet18 --policy p2 --prefetch on
//
// Exit codes: 0 every combo certified, 1 findings (a rejected candidate,
// or warnings under --strict), 2 usage error.
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "analysis/analyze_report.hpp"
#include "model/parser.hpp"
#include "model/zoo/zoo.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"
#include "validate/diagnostics.hpp"

namespace {

using namespace rainbow;
using analysis::AnalyzeCombo;
using analysis::AnalyzeOptions;
using analysis::ComboOutcome;

void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [inputs] [options]\n"
      << "inputs (at least one):\n"
      << "  --model <file|zoo-name>  optimize this model (repeatable)\n"
      << "  --all-zoo                optimize every built-in zoo model\n"
      << "options:\n"
      << "  --glb <kB[,kB...]>       GLB sizes (default 64,256)\n"
      << "  --width <bits>           element width (default 8)\n"
      << "  --policy <p>             het | all | intra | p1..p5 | tiled\n"
      << "                           (default all)\n"
      << "  --prefetch <m>           on | off | both (default both)\n"
      << "  --objective <o>          accesses | latency | both (default\n"
      << "                           both, het plans only)\n"
      << "  --no-interlayer          skip the inter-layer-reuse het plans\n"
      << "  --jobs <n>               optimize combos on n threads (0 = all\n"
      << "                           cores); report order is deterministic\n"
      << "  --strict                 warnings also fail (exit 1)\n"
      << "  --format <f>             text | json (default text)\n"
      << "  --quiet                  print only the summary line\n";
}

std::vector<count_t> parse_kib_list(const std::string& csv) {
  std::vector<count_t> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const auto comma = csv.find(',', start);
    const std::string item =
        csv.substr(start, comma == std::string::npos ? csv.size() - start
                                                     : comma - start);
    if (!item.empty()) {
      out.push_back(std::strtoull(item.c_str(), nullptr, 10));
    }
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> model_inputs;
  std::vector<count_t> glb_kib = {64, 256};
  AnalyzeOptions analyze_options;
  analyze_options.optimize = true;
  analyze_options.tool = "rainbow_opt";
  std::string policy_mode = "all";
  std::string prefetch_mode = "both";
  std::string objective_mode = "both";
  bool all_zoo = false;
  bool no_interlayer = false;
  bool quiet = false;
  int jobs = 1;
  std::string format = "text";
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    std::string inline_value;
    if (const auto eq = flag.find('='); eq != std::string::npos) {
      inline_value = flag.substr(eq + 1);
      flag = flag.substr(0, eq);
    }
    auto next = [&]() -> std::string {
      if (!inline_value.empty()) {
        return inline_value;
      }
      if (i + 1 >= argc) {
        std::cerr << "rainbow_opt: missing value for " << flag << '\n';
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--model") {
      model_inputs.push_back(next());
    } else if (flag == "--all-zoo") {
      all_zoo = true;
    } else if (flag == "--glb") {
      glb_kib = parse_kib_list(next());
    } else if (flag == "--width") {
      analyze_options.width_bits = std::atoi(next().c_str());
    } else if (flag == "--policy") {
      policy_mode = next();
    } else if (flag == "--prefetch") {
      prefetch_mode = next();
    } else if (flag == "--objective") {
      objective_mode = next();
    } else if (flag == "--no-interlayer") {
      no_interlayer = true;
    } else if (flag == "--jobs") {
      jobs = std::atoi(next().c_str());
    } else if (flag == "--strict") {
      analyze_options.strict = true;
    } else if (flag == "--format") {
      format = next();
    } else if (flag == "--quiet") {
      quiet = true;
    } else {
      usage(argv[0]);
      return flag == "--help" || flag == "-h" ? 0 : 2;
    }
  }
  if ((model_inputs.empty() && !all_zoo) || glb_kib.empty() || jobs < 0 ||
      (format != "text" && format != "json") ||
      (prefetch_mode != "on" && prefetch_mode != "off" &&
       prefetch_mode != "both") ||
      (objective_mode != "accesses" && objective_mode != "latency" &&
       objective_mode != "both")) {
    usage(argv[0]);
    return 2;
  }

  try {
    std::vector<std::string> models;
    if (all_zoo) {
      for (const auto& name : model::zoo::model_names()) {
        models.push_back(name);
      }
    }
    models.insert(models.end(), model_inputs.begin(), model_inputs.end());

    std::vector<core::Objective> objectives;
    if (objective_mode != "latency") {
      objectives.push_back(core::Objective::kAccesses);
    }
    if (objective_mode != "accesses") {
      objectives.push_back(core::Objective::kLatency);
    }
    std::vector<bool> prefetches;
    if (prefetch_mode != "on") {
      prefetches.push_back(false);
    }
    if (prefetch_mode != "off") {
      prefetches.push_back(true);
    }
    std::vector<std::string> forced;
    if (policy_mode == "all") {
      for (core::Policy p : core::kAllPolicies) {
        forced.push_back(core::short_label(p, false));
      }
      forced.emplace_back("tiled");
    } else if (policy_mode != "het") {
      static_cast<void>(core::policy_from_short_label(policy_mode));
      forced.push_back(policy_mode);
    }

    std::vector<AnalyzeCombo> combos;
    for (const std::string& model : models) {
      for (count_t kib : glb_kib) {
        if (policy_mode == "het" || policy_mode == "all") {
          for (core::Objective objective : objectives) {
            combos.push_back({model, kib, "het", false, false, objective});
            if (!no_interlayer) {
              combos.push_back({model, kib, "het", false, true, objective});
            }
          }
        }
        for (const std::string& label : forced) {
          for (bool prefetch : prefetches) {
            combos.push_back({model, kib, label, prefetch, false,
                              core::Objective::kAccesses});
          }
        }
      }
    }

    const auto cache = std::make_shared<core::EvalCache>();
    const auto run_combo = [&](const AnalyzeCombo& combo) {
      const model::Network net = std::filesystem::exists(combo.model)
                                     ? model::load_network(combo.model)
                                     : model::zoo::by_name(combo.model);
      return analysis::analyze_combo(net, combo, analyze_options, cache);
    };

    std::vector<ComboOutcome> outcomes(combos.size());
    const std::size_t workers = util::resolve_workers(
        jobs, combos.size(), /*min_items_per_worker=*/1);
    if (workers <= 1) {
      for (std::size_t i = 0; i < combos.size(); ++i) {
        outcomes[i] = run_combo(combos[i]);
      }
    } else {
      std::vector<std::size_t> indices(combos.size());
      std::iota(indices.begin(), indices.end(), std::size_t{0});
      util::parallel_for_each(
          indices, [&](std::size_t i) { outcomes[i] = run_combo(combos[i]); },
          workers);
    }

    validate::ValidationReport all_findings;
    std::size_t skipped = 0;
    std::size_t certified = 0;
    std::size_t improved = 0;
    for (const ComboOutcome& outcome : outcomes) {
      all_findings.merge(outcome.result.report);
      if (outcome.status.rfind("skipped", 0) == 0) {
        ++skipped;
        continue;
      }
      if (outcome.opt_certified) {
        ++certified;
      }
      if (outcome.opt_optimized_cycles < outcome.opt_original_cycles) {
        ++improved;
      }
      if (!quiet && format == "text") {
        std::cout << analysis::combo_label(outcome.combo) << ": "
                  << (outcome.opt_certified ? "certified" : "REJECTED")
                  << ", critical path " << outcome.opt_original_cycles
                  << " -> " << outcome.opt_optimized_cycles
                  << " cycles, stalls " << outcome.opt_original_stall_cycles
                  << " -> " << outcome.opt_optimized_stall_cycles << " ("
                  << outcome.opt_layers_reordered << " layer(s) reordered, "
                  << outcome.opt_barriers_elided << " barrier(s) elided, "
                  << outcome.opt_transfers_coalesced << " merge(s))\n";
        for (const auto& d : outcome.result.report.diagnostics()) {
          std::cout << "  " << d.message() << '\n';
        }
      }
    }

    if (format == "json") {
      analysis::write_json(outcomes, analyze_options, std::cout);
    } else {
      std::cout << "rainbow_opt: " << outcomes.size() << " combo(s), "
                << skipped << " skipped, " << certified << " certified, "
                << improved << " improved, " << all_findings.error_count()
                << " error(s), " << all_findings.warning_count()
                << " warning(s)\n";
    }
    return validate::strict_exit_code(all_findings, analyze_options.strict);
  } catch (const std::exception& e) {
    std::cerr << "rainbow_opt: " << e.what() << '\n';
    return 2;
  }
}
