// rainbow_sim: command-line front end of the baseline simulator — the
// SCALE-Sim replacement of this repository.  Simulates a network on the
// fixed-partition systolic accelerator under a chosen dataflow and
// partition, reports per-layer traffic/cycles/utilization, and optionally
// writes SCALE-Sim-style SRAM traces.
//
//   rainbow_sim --model resnet18 --glb 64 --partition 25
//   rainbow_sim --model mobilenet --dataflow ws --per-layer
//   rainbow_sim --model mnasnet --trace-dir /tmp/traces --trace-rows 10000
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <optional>
#include <string>

#include "model/parser.hpp"
#include "model/zoo/zoo.hpp"
#include "scalesim/simulator.hpp"
#include "scalesim/trace_writer.hpp"
#include "util/table.hpp"

namespace {

using namespace rainbow;

struct CliOptions {
  std::string model;
  count_t glb_kb = 64;
  int width_bits = 8;
  int partition_pct = 50;  // ifmap share of the feature pool
  scalesim::Dataflow dataflow = scalesim::Dataflow::kOutputStationary;
  bool per_layer = false;
  bool traced = false;  // cycle-level run with the fold walk
  int threads = 1;      // per-layer simulation fan-out (0 = hw concurrency)
  std::optional<std::string> trace_dir;
  count_t trace_rows = 0;
};

[[noreturn]] void usage(const char* argv0, int code) {
  std::ostream& os = code == 0 ? std::cout : std::cerr;
  os << "usage: " << argv0 << " --model <zoo-name|file.model> [options]\n"
     << "  --glb <kB>         on-chip memory (default 64)\n"
     << "  --width <bits>     element width (default 8)\n"
     << "  --partition <pct>  ifmap share of the feature pool: 25|50|75\n"
     << "  --dataflow <d>     os | ws | is (default os)\n"
     << "  --per-layer        per-layer table\n"
     << "  --traced           cycle-level fold walk (slow, like SCALE-Sim)\n"
     << "  --threads <n>      parallel fold-chunk simulation and trace\n"
     << "                     shard formatting (0 = all cores; results and\n"
     << "                     trace bytes identical for every thread count)\n"
     << "  --trace-dir <dir>  write per-layer SRAM trace CSVs\n"
     << "  --trace-rows <n>   cap rows per trace file (0 = unlimited)\n";
  std::exit(code);
}

CliOptions parse(int argc, char** argv) {
  CliOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&](const char* what) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << what << "\n";
        usage(argv[0], 2);
      }
      return argv[++i];
    };
    if (flag == "--model") {
      opt.model = next("--model");
    } else if (flag == "--glb") {
      opt.glb_kb = std::strtoull(next("--glb").c_str(), nullptr, 10);
    } else if (flag == "--width") {
      opt.width_bits = std::atoi(next("--width").c_str());
    } else if (flag == "--partition") {
      opt.partition_pct = std::atoi(next("--partition").c_str());
    } else if (flag == "--dataflow") {
      try {
        opt.dataflow = scalesim::dataflow_from_string(next("--dataflow"));
      } catch (const std::invalid_argument& e) {
        std::cerr << e.what() << '\n';
        usage(argv[0], 2);
      }
    } else if (flag == "--per-layer") {
      opt.per_layer = true;
    } else if (flag == "--traced") {
      opt.traced = true;
    } else if (flag == "--threads") {
      opt.threads = std::atoi(next("--threads").c_str());
    } else if (flag == "--trace-dir") {
      opt.trace_dir = next("--trace-dir");
    } else if (flag == "--trace-rows") {
      opt.trace_rows = std::strtoull(next("--trace-rows").c_str(), nullptr, 10);
    } else if (flag == "--help" || flag == "-h") {
      usage(argv[0], 0);
    } else {
      std::cerr << "unknown flag '" << flag << "'\n";
      usage(argv[0], 2);
    }
  }
  if (opt.model.empty()) {
    std::cerr << "--model is required\n";
    usage(argv[0], 2);
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions opt = parse(argc, argv);
  try {
    const model::Network net =
        std::filesystem::exists(opt.model)
            ? model::load_network(opt.model)
            : model::zoo::by_name(opt.model);

    arch::AcceleratorSpec spec = arch::paper_spec(util::kib(opt.glb_kb));
    spec.data_width_bits = opt.width_bits;
    spec.validate();

    const scalesim::BufferPartition partition{
        .ifmap_fraction = opt.partition_pct / 100.0};
    const scalesim::Simulator sim(spec, partition, opt.dataflow);

    const scalesim::RunResult run = sim.run(net, opt.threads);
    std::cout << "baseline " << partition.label() << " ("
              << to_string(opt.dataflow) << ") on " << net.name() << " @ "
              << opt.glb_kb << " kB:\n"
              << "  DRAM traffic: " << util::fmt(run.access_mb(spec), 2)
              << " MB (" << util::fmt_count(run.total_accesses)
              << " elements)\n"
              << "  compute:      "
              << util::fmt(static_cast<double>(run.total_cycles) / 1e6, 2)
              << " Mcycles (zero-stall)\n";

    if (opt.traced) {
      const scalesim::TraceResult traced = sim.run_traced(net, opt.threads);
      std::cout << "  traced run:   "
                << util::fmt_count(traced.sram_read_events)
                << " SRAM reads, " << util::fmt_count(traced.sram_write_events)
                << " writes (checksum " << traced.trace_checksum << ")\n";
    }

    if (opt.per_layer) {
      util::Table table({"layer", "kind", "ifmap rd", "filter rd", "ofmap wr",
                         "psum", "cycles", "util %", "order"});
      for (std::size_t i = 0; i < net.size(); ++i) {
        const auto& r = run.layers[i];
        const auto& layer = net.layer(i);
        table.add_row({layer.name(),
                       std::string(model::to_string(layer.kind())),
                       util::fmt_count(r.traffic.ifmap_reads),
                       util::fmt_count(r.traffic.filter_reads),
                       util::fmt_count(r.traffic.ofmap_writes),
                       util::fmt_count(r.traffic.psum_transfers),
                       util::fmt_count(r.compute_cycles),
                       util::fmt(100.0 * r.utilization),
                       r.row_outer_order ? "row-outer" : "filter-outer"});
      }
      table.print(std::cout);
    }

    if (opt.trace_dir) {
      std::filesystem::create_directories(*opt.trace_dir);
      count_t total_rows = 0;
      count_t total_bytes = 0;
      for (std::size_t i = 0; i < net.size(); ++i) {
        const auto path = std::filesystem::path(*opt.trace_dir) /
                          (net.layer(i).name() + "_sram_read.csv");
        // --threads also drives the writer's shard pipeline; the bytes are
        // identical for every value.
        const auto info = scalesim::write_sram_trace(
            net.layer(i), spec, path,
            {.max_rows = opt.trace_rows, .threads = opt.threads});
        total_rows += info.rows_written;
        total_bytes += info.bytes_written;
      }
      std::cout << "  traces:       " << net.size() << " files, "
                << util::fmt_count(total_rows) << " rows ("
                << util::format_bytes(total_bytes) << ") in "
                << *opt.trace_dir << '\n';
    }
  } catch (const std::exception& e) {
    std::cerr << "rainbow_sim: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
