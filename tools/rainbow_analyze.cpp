// rainbow_analyze: static analysis of lowered command streams.  For every
// requested (model, GLB, policy, prefetch) combination the tool plans,
// lowers the plan to a codegen::Program, and abstractly interprets the
// stream — region lifetimes, occupancy timeline, barrier epochs, and the
// plan cross-checks — reporting coded S0xx findings (see
// docs/static_analysis.md) without executing anything.
//
//   rainbow_analyze --all-zoo --strict
//   rainbow_analyze --model resnet18 --glb 64 --policy het
//   rainbow_analyze --model mobilenet --policy p2 --prefetch on
//   rainbow_analyze --all-zoo --strict --format json > report.json
//
// Exit codes: 0 clean, 1 findings (errors, or warnings under --strict),
// 2 usage error.
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/stream_analyzer.hpp"
#include "codegen/lower.hpp"
#include "core/eval_cache.hpp"
#include "core/manager.hpp"
#include "model/parser.hpp"
#include "model/zoo/zoo.hpp"
#include "util/units.hpp"

namespace {

using namespace rainbow;

/// One planning configuration to lower and analyze.
struct Combo {
  std::string model;
  count_t glb_kib = 64;
  std::string policy;  ///< "het" or a short policy label
  bool prefetch = false;
  bool interlayer = false;
  core::Objective objective = core::Objective::kAccesses;
};

struct ComboOutcome {
  Combo combo;
  std::string status;  ///< "ok", "findings", or "skipped (...)"
  analysis::AnalysisResult result;
};

void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [inputs] [options]\n"
      << "inputs (at least one):\n"
      << "  --model <file|zoo-name>  analyze this model (repeatable)\n"
      << "  --all-zoo                analyze every built-in zoo model\n"
      << "options:\n"
      << "  --glb <kB[,kB...]>       GLB sizes to analyze (default 64,1024)\n"
      << "  --width <bits>           element width (default 8)\n"
      << "  --policy <p>             het | all | intra | p1..p5 | tiled\n"
      << "                           (default all: het plans plus every\n"
      << "                           forced policy)\n"
      << "  --prefetch <m>           on | off | both — prefetch variants of\n"
      << "                           the forced policies (default both)\n"
      << "  --objective <o>          accesses | latency | both — objectives\n"
      << "                           for the het plans (default both)\n"
      << "  --no-interlayer          skip the inter-layer-reuse het plans\n"
      << "  --strict                 warnings also fail (exit 1)\n"
      << "  --format <f>             text | json (default text)\n"
      << "  --quiet                  print only the summary line\n";
}

std::vector<count_t> parse_kib_list(const std::string& csv) {
  std::vector<count_t> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const auto comma = csv.find(',', start);
    const std::string item =
        csv.substr(start, comma == std::string::npos ? csv.size() - start
                                                     : comma - start);
    if (!item.empty()) {
      out.push_back(std::strtoull(item.c_str(), nullptr, 10));
    }
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string combo_label(const Combo& combo) {
  std::string label = combo.model + " @ " + std::to_string(combo.glb_kib) +
                      " kB, " + combo.policy;
  if (combo.policy == "het") {
    label += std::string("/") + std::string(core::to_string(combo.objective));
    if (combo.interlayer) {
      label += "+inter";
    }
  } else if (combo.prefetch) {
    label += "+p";
  }
  return label;
}

void write_json(const std::vector<ComboOutcome>& outcomes, bool strict,
                std::ostream& os) {
  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t skipped = 0;
  os << "{\n  \"tool\": \"rainbow_analyze\",\n"
     << "  \"strict\": " << (strict ? "true" : "false") << ",\n"
     << "  \"combos\": [\n";
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const ComboOutcome& o = outcomes[i];
    errors += o.result.report.error_count();
    warnings += o.result.report.warning_count();
    if (o.status.rfind("skipped", 0) == 0) {
      ++skipped;
    }
    os << "    {\"model\": \"" << json_escape(o.combo.model)
       << "\", \"glb_kib\": " << o.combo.glb_kib << ", \"policy\": \""
       << json_escape(o.combo.policy) << "\", \"prefetch\": "
       << (o.combo.prefetch ? "true" : "false") << ", \"interlayer\": "
       << (o.combo.interlayer ? "true" : "false") << ", \"objective\": \""
       << core::to_string(o.combo.objective) << "\", \"status\": \""
       << json_escape(o.status) << "\", \"errors\": "
       << o.result.report.error_count() << ", \"warnings\": "
       << o.result.report.warning_count() << ", \"commands\": "
       << o.result.commands << ", \"regions\": " << o.result.regions
       << ", \"capacity_elems\": " << o.result.capacity_elems
       << ", \"peak_live_elems\": " << o.result.peak_live_elems
       << ", \"glb_peak_elems\": " << o.result.glb_peak_elems
       << ", \"diagnostics\": [";
    const auto& diags = o.result.report.diagnostics();
    for (std::size_t j = 0; j < diags.size(); ++j) {
      const auto& d = diags[j];
      os << (j == 0 ? "" : ", ") << "{\"code\": \""
         << validate::code_string(d.code) << "\", \"severity\": \""
         << validate::to_string(d.severity) << "\", \"message\": \""
         << json_escape(d.message()) << "\"}";
    }
    os << "]}" << (i + 1 == outcomes.size() ? "" : ",") << '\n';
  }
  os << "  ],\n"
     << "  \"total\": {\"combos\": " << outcomes.size()
     << ", \"skipped\": " << skipped << ", \"errors\": " << errors
     << ", \"warnings\": " << warnings << "}\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> model_inputs;
  std::vector<count_t> glb_kib = {64, 1024};
  int width_bits = 8;
  std::string policy_mode = "all";
  std::string prefetch_mode = "both";
  std::string objective_mode = "both";
  bool all_zoo = false;
  bool no_interlayer = false;
  bool strict = false;
  bool quiet = false;
  std::string format = "text";
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    // Accept both "--format json" and "--format=json" style.
    std::string inline_value;
    if (const auto eq = flag.find('='); eq != std::string::npos) {
      inline_value = flag.substr(eq + 1);
      flag = flag.substr(0, eq);
    }
    auto next = [&]() -> std::string {
      if (!inline_value.empty()) {
        return inline_value;
      }
      if (i + 1 >= argc) {
        std::cerr << "rainbow_analyze: missing value for " << flag << '\n';
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--model") {
      model_inputs.push_back(next());
    } else if (flag == "--all-zoo") {
      all_zoo = true;
    } else if (flag == "--glb") {
      glb_kib = parse_kib_list(next());
    } else if (flag == "--width") {
      width_bits = std::atoi(next().c_str());
    } else if (flag == "--policy") {
      policy_mode = next();
    } else if (flag == "--prefetch") {
      prefetch_mode = next();
    } else if (flag == "--objective") {
      objective_mode = next();
    } else if (flag == "--no-interlayer") {
      no_interlayer = true;
    } else if (flag == "--strict") {
      strict = true;
    } else if (flag == "--format") {
      format = next();
    } else if (flag == "--quiet") {
      quiet = true;
    } else {
      usage(argv[0]);
      return flag == "--help" || flag == "-h" ? 0 : 2;
    }
  }
  if ((model_inputs.empty() && !all_zoo) || glb_kib.empty() ||
      (format != "text" && format != "json") ||
      (prefetch_mode != "on" && prefetch_mode != "off" &&
       prefetch_mode != "both") ||
      (objective_mode != "accesses" && objective_mode != "latency" &&
       objective_mode != "both")) {
    usage(argv[0]);
    return 2;
  }

  try {
    std::vector<std::string> models;
    if (all_zoo) {
      for (const auto& name : model::zoo::model_names()) {
        models.push_back(name);
      }
    }
    models.insert(models.end(), model_inputs.begin(), model_inputs.end());

    std::vector<core::Objective> objectives;
    if (objective_mode != "latency") {
      objectives.push_back(core::Objective::kAccesses);
    }
    if (objective_mode != "accesses") {
      objectives.push_back(core::Objective::kLatency);
    }
    std::vector<bool> prefetches;
    if (prefetch_mode != "on") {
      prefetches.push_back(false);
    }
    if (prefetch_mode != "off") {
      prefetches.push_back(true);
    }
    std::vector<std::string> forced;  // short labels of forced policies
    if (policy_mode == "all") {
      for (core::Policy p : core::kAllPolicies) {
        forced.push_back(core::short_label(p, false));
      }
      forced.emplace_back("tiled");
    } else if (policy_mode != "het") {
      // Validates the label up front (throws on anything unknown).
      static_cast<void>(core::policy_from_short_label(policy_mode));
      forced.push_back(policy_mode);
    }

    std::vector<Combo> combos;
    for (const std::string& model : models) {
      for (count_t kib : glb_kib) {
        if (policy_mode == "het" || policy_mode == "all") {
          for (core::Objective objective : objectives) {
            combos.push_back({model, kib, "het", false, false, objective});
            if (!no_interlayer) {
              combos.push_back({model, kib, "het", false, true, objective});
            }
          }
        }
        for (const std::string& label : forced) {
          for (bool prefetch : prefetches) {
            combos.push_back({model, kib, label, prefetch, false,
                              core::Objective::kAccesses});
          }
        }
      }
    }

    // One evaluation cache across the whole grid: the sweep re-plans the
    // same layers under many specs, which is exactly what it memoizes.
    const auto cache = std::make_shared<core::EvalCache>();
    std::vector<ComboOutcome> outcomes;
    std::size_t errors = 0;
    std::size_t warnings = 0;
    std::size_t skipped = 0;
    for (const Combo& combo : combos) {
      const model::Network net =
          std::filesystem::exists(combo.model)
              ? model::load_network(combo.model)
              : model::zoo::by_name(combo.model);
      arch::AcceleratorSpec spec = arch::paper_spec(util::kib(combo.glb_kib));
      spec.data_width_bits = width_bits;
      spec.validate();

      core::ManagerOptions options;
      options.analyzer.eval_cache = cache;
      options.interlayer_reuse = combo.interlayer;
      const core::MemoryManager manager(spec, options);

      ComboOutcome outcome;
      outcome.combo = combo;
      std::optional<core::ExecutionPlan> plan;
      try {
        plan = combo.policy == "het"
                   ? manager.plan(net, combo.objective)
                   : manager.plan_with_policy(
                         net, core::policy_from_short_label(combo.policy),
                         combo.prefetch, combo.objective);
      } catch (const std::runtime_error& e) {
        // The forced policy cannot execute this model in this GLB at all;
        // nothing to lower.
        outcome.status = std::string("skipped (") + e.what() + ")";
      }
      if (plan && !plan->feasible()) {
        outcome.status = "skipped (plan infeasible for this GLB)";
        plan.reset();
      }
      if (plan) {
        const codegen::Program program = codegen::lower(*plan, net);
        outcome.result = analysis::analyze_lowering(program, *plan, net);
        outcome.status = outcome.result.clean() ? "ok" : "findings";
        errors += outcome.result.report.error_count();
        warnings += outcome.result.report.warning_count();
      } else {
        ++skipped;
      }
      if (!quiet && format == "text") {
        std::cout << combo_label(outcome.combo) << ": " << outcome.status;
        if (outcome.status == "ok") {
          std::cout << " (" << outcome.result.commands << " commands, "
                    << outcome.result.regions << " regions, peak "
                    << outcome.result.peak_live_elems << "/"
                    << outcome.result.capacity_elems << " elems)";
        }
        std::cout << '\n';
        for (const auto& d : outcome.result.report.diagnostics()) {
          std::cout << "  " << d.message() << '\n';
        }
      }
      outcomes.push_back(std::move(outcome));
    }

    if (format == "json") {
      write_json(outcomes, strict, std::cout);
    } else {
      std::cout << "rainbow_analyze: " << outcomes.size() << " combo(s), "
                << skipped << " skipped, " << errors << " error(s), "
                << warnings << " warning(s)\n";
    }
    if (errors > 0 || (strict && warnings > 0)) {
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "rainbow_analyze: " << e.what() << '\n';
    return 2;
  }
}
