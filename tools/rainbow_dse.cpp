// rainbow_dse: the co-design sweep as a command-line tool — evaluate a
// model over a GLB/width/batch grid, print the points, the Pareto front,
// the marginal utility of each size step, and the sizing recommendations.
//
//   rainbow_dse --model mobilenetv2
//   rainbow_dse --model resnet18 --min-kb 16 --max-kb 4096 --widths 8,16
//   rainbow_dse --model googlenet --interlayer --csv sweep.csv
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "analysis/stream_analyzer.hpp"
#include "codegen/lower.hpp"
#include "core/eval_cache.hpp"
#include "core/manager.hpp"
#include "dse/pareto.hpp"
#include "dse/sensitivity.hpp"
#include "model/parser.hpp"
#include "model/summary.hpp"
#include "model/zoo/zoo.hpp"
#include "util/table.hpp"
#include "validate/plan_validator.hpp"

namespace {

using namespace rainbow;

std::vector<int> parse_int_list(const std::string& csv) {
  std::vector<int> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const auto comma = csv.find(',', start);
    const std::string item =
        csv.substr(start, comma == std::string::npos ? csv.size() - start
                                                     : comma - start);
    if (!item.empty()) {
      out.push_back(std::atoi(item.c_str()));
    }
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string model_name;
  count_t min_kb = 32, max_kb = 2048;
  std::vector<int> widths = {8};
  std::vector<int> batches = {1};
  bool interlayer = false;
  bool no_eval_cache = false;
  bool cache_stats = false;
  bool simulate = false;
  bool validate = false;
  bool analyze = false;
  bool oracle = false;
  std::uint64_t oracle_budget = 2'000'000;
  std::optional<std::string> csv_path;
  std::optional<std::string> json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << flag << '\n';
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--model") {
      model_name = next();
    } else if (flag == "--min-kb") {
      min_kb = std::strtoull(next().c_str(), nullptr, 10);
    } else if (flag == "--max-kb") {
      max_kb = std::strtoull(next().c_str(), nullptr, 10);
    } else if (flag == "--widths") {
      widths = parse_int_list(next());
    } else if (flag == "--batches") {
      batches = parse_int_list(next());
    } else if (flag == "--interlayer") {
      interlayer = true;
    } else if (flag == "--no-eval-cache") {
      no_eval_cache = true;
    } else if (flag == "--cache-stats") {
      cache_stats = true;
    } else if (flag == "--simulate") {
      simulate = true;
    } else if (flag == "--validate") {
      validate = true;
    } else if (flag == "--analyze") {
      analyze = true;
    } else if (flag == "--oracle") {
      oracle = true;
    } else if (flag == "--oracle-budget") {
      oracle_budget = std::strtoull(next().c_str(), nullptr, 10);
    } else if (flag == "--csv") {
      csv_path = next();
    } else if (flag == "--json") {
      json_path = next();
    } else {
      std::cerr << "usage: " << argv[0]
                << " --model <zoo-name|file.model> [--min-kb N] [--max-kb N]"
                   " [--widths 8,16] [--batches 1,8] [--interlayer]"
                   " [--no-eval-cache] [--cache-stats] [--simulate]"
                   " [--oracle] [--oracle-budget N]"
                   " [--validate] [--analyze] [--csv path] [--json path]\n";
      return flag == "--help" || flag == "-h" ? 0 : 2;
    }
  }
  if (model_name.empty()) {
    std::cerr << "--model is required\n";
    return 2;
  }

  try {
    const model::Network net =
        std::filesystem::exists(model_name)
            ? model::load_network(model_name)
            : model::zoo::by_name(model_name);

    dse::SweepConfig config;
    for (count_t kb = min_kb; kb <= max_kb; kb *= 2) {
      config.glb_bytes.push_back(util::kib(kb));
    }
    config.data_width_bits = widths;
    config.batch_sizes = batches;
    config.with_interlayer = interlayer;
    config.simulate_execution = simulate;
    config.with_oracle = oracle;
    config.oracle_node_budget = oracle_budget;
    config.use_eval_cache = !no_eval_cache;
    if (config.use_eval_cache) {
      config.eval_cache = std::make_shared<core::EvalCache>();
    }
    const auto points = dse::run_sweep(net, config);

    const auto front = dse::pareto_front(
        points, [](const dse::SweepPoint& p) { return p.access_mb; },
        [](const dse::SweepPoint& p) { return p.latency_cycles; });
    std::vector<char> on_front(points.size(), 0);
    for (std::size_t i : front) {
      on_front[i] = 1;
    }

    std::vector<std::string> header = {"GLB kB", "width",     "batch",
                                       "inter",  "MB/img",    "Mcyc/img",
                                       "energy mJ", "pareto"};
    if (oracle) {
      header.insert(header.end(), {"gap %", "exact"});
    }
    util::Table table(std::move(header));
    for (std::size_t i = 0; i < points.size(); ++i) {
      const auto& p = points[i];
      std::vector<std::string> row = {
          std::to_string(p.glb_bytes / 1024),
          std::to_string(p.data_width_bits),
          std::to_string(p.batch),
          p.interlayer ? "y" : "-",
          util::fmt(p.access_mb_per_image(), 2),
          util::fmt(p.latency_per_image() / 1e6, 2),
          util::fmt(p.energy_mj, 2),
          on_front[i] ? "*" : ""};
      if (oracle) {
        row.push_back(util::fmt(100.0 * p.gap_vs_oracle, 3));
        row.push_back(p.oracle_exact ? "y" : "bounded");
      }
      table.add_row(std::move(row));
    }
    std::cout << "co-design sweep for " << net.name() << " ("
              << points.size() << " points, " << front.size()
              << " on the accesses/latency Pareto front)\n";
    table.print(std::cout);
    if (simulate) {
      std::size_t traffic_match = 0;
      double max_skew = 0.0;
      for (const auto& p : points) {
        if (p.sim_accesses == p.accesses) {
          ++traffic_match;
        }
        if (p.latency_cycles > 0.0) {
          max_skew = std::max(
              max_skew, std::abs(p.sim_latency_cycles - p.latency_cycles) /
                            p.latency_cycles);
        }
      }
      std::cout << "engine replay: " << traffic_match << "/" << points.size()
                << " points match analytic traffic exactly; max latency skew "
                << util::fmt(100.0 * max_skew, 2) << "%\n";
    }
    if (oracle) {
      double max_gap = 0.0;
      std::size_t exact = 0, optimal = 0;
      for (const auto& p : points) {
        max_gap = std::max(max_gap, p.gap_vs_oracle);
        exact += p.oracle_exact ? 1 : 0;
        optimal += (p.oracle_exact && p.gap_vs_oracle == 0.0) ? 1 : 0;
      }
      std::cout << "oracle: " << exact << "/" << points.size()
                << " points searched exactly; Algorithm 1 provably optimal on "
                << optimal << "; max gap " << util::fmt(100.0 * max_gap, 3)
                << "%\n";
    }
    if (cache_stats) {
      if (config.eval_cache) {
        const core::EvalCacheStats stats = config.eval_cache->stats();
        std::cout << "eval cache: " << stats.lookups << " lookups, "
                  << stats.hits << " hits ("
                  << util::fmt(100.0 * stats.hit_rate(), 1) << "%), "
                  << stats.inserts << " inserts, " << stats.evictions
                  << " evictions, ~" << util::fmt(stats.approx_mb(), 2)
                  << " MB resident\n";
      } else {
        std::cout << "eval cache: disabled (--no-eval-cache)\n";
      }
    }

    // Size sensitivity needs a single-axis slice: only when the grid has
    // one width/batch/interlayer setting.
    if (widths.size() == 1 && batches.size() == 1 && !interlayer) {
      std::cout << "\nmarginal utility per size step (bytes saved / byte):\n";
      for (const auto& m : dse::marginal_utility(points, widths[0])) {
        std::cout << "  " << m.from_bytes / 1024 << " -> "
                  << m.to_bytes / 1024 << " kB: "
                  << util::fmt(m.bytes_saved_per_byte, 2) << '\n';
      }
      std::cout << "knee: " << dse::knee_glb_bytes(points, 1.0, widths[0]) / 1024
                << " kB\n";
    }
    if (validate) {
      // Re-plan every grid point (Het, both objectives) and re-derive each
      // plan's invariants; sweeps must never publish an inconsistent point.
      std::size_t plans = 0, errors = 0, warnings = 0;
      for (count_t glb : config.glb_bytes) {
        for (int width : widths) {
          for (int batch : batches) {
            auto spec = arch::paper_spec(glb);
            spec.data_width_bits = width;
            core::ManagerOptions moptions;
            moptions.analyzer.estimator.batch = batch;
            moptions.interlayer_reuse = interlayer;
            const core::MemoryManager manager(spec, moptions);
            validate::ValidatorOptions voptions;
            voptions.estimator = moptions.analyzer.estimator;
            const validate::PlanValidator validator(voptions);
            for (core::Objective objective :
                 {core::Objective::kAccesses, core::Objective::kLatency}) {
              const auto plan = manager.plan(net, objective);
              const auto report = validator.validate(plan, net);
              ++plans;
              errors += report.error_count();
              warnings += report.warning_count();
              for (const auto& d : report.diagnostics()) {
                if (d.severity == validate::Severity::kError) {
                  std::cerr << "  [" << glb / 1024 << " kB, w" << width
                            << ", b" << batch << ", "
                            << core::to_string(objective) << "] "
                            << d.message() << '\n';
                }
              }
            }
          }
        }
      }
      std::cout << "validate: " << plans << " plan(s) re-derived, " << errors
                << " error(s), " << warnings << " warning(s)\n";
      if (errors > 0) {
        return 1;
      }
    }
    if (analyze) {
      // Lower every grid point's plan (Het, both objectives) and statically
      // analyze the command stream (docs/static_analysis.md): lifetimes,
      // occupancy, barrier epochs, and the plan cross-checks.
      std::size_t streams = 0, errors = 0, warnings = 0;
      for (count_t glb : config.glb_bytes) {
        for (int width : widths) {
          for (int batch : batches) {
            auto spec = arch::paper_spec(glb);
            spec.data_width_bits = width;
            core::ManagerOptions moptions;
            moptions.analyzer.estimator.batch = batch;
            moptions.interlayer_reuse = interlayer;
            const core::MemoryManager manager(spec, moptions);
            for (core::Objective objective :
                 {core::Objective::kAccesses, core::Objective::kLatency}) {
              const auto plan = manager.plan(net, objective);
              if (!plan.feasible()) {
                continue;
              }
              const auto program = codegen::lower(plan, net);
              const auto result =
                  analysis::analyze_lowering(program, plan, net);
              ++streams;
              errors += result.report.error_count();
              warnings += result.report.warning_count();
              for (const auto& d : result.report.diagnostics()) {
                if (d.severity == validate::Severity::kError) {
                  std::cerr << "  [" << glb / 1024 << " kB, w" << width
                            << ", b" << batch << ", "
                            << core::to_string(objective) << "] "
                            << d.message() << '\n';
                }
              }
            }
          }
        }
      }
      std::cout << "analyze: " << streams << " stream(s) analyzed, " << errors
                << " error(s), " << warnings << " warning(s)\n";
      if (errors > 0) {
        return 1;
      }
    }

    const auto summary = model::summarize(net);
    std::cout << "profile: " << model::to_string(summary.dominance)
              << ", recommended fixed-split ifmap fraction "
              << util::fmt(model::recommended_ifmap_fraction(summary), 2)
              << " (if you must split)\n";

    if (csv_path) {
      std::ofstream out(*csv_path);
      if (!out) {
        std::cerr << "cannot open " << *csv_path << '\n';
        return 1;
      }
      out << "glb_bytes,width_bits,batch,interlayer,accesses,latency_cycles,"
             "energy_mj,pareto\n";
      for (std::size_t i = 0; i < points.size(); ++i) {
        const auto& p = points[i];
        out << p.glb_bytes << ',' << p.data_width_bits << ',' << p.batch
            << ',' << (p.interlayer ? 1 : 0) << ',' << p.accesses << ','
            << p.latency_cycles << ',' << p.energy_mj << ','
            << int(on_front[i]) << '\n';
      }
    }
    if (json_path) {
      // The machine-readable sweep report: every grid point with its
      // analytic numbers and, under --oracle, the optimality gap.
      std::ofstream out(*json_path);
      if (!out) {
        std::cerr << "cannot open " << *json_path << '\n';
        return 1;
      }
      out.precision(17);  // doubles must round-trip
      out << "{\n  \"model\": \"" << net.name() << "\",\n  \"points\": [\n";
      for (std::size_t i = 0; i < points.size(); ++i) {
        const auto& p = points[i];
        out << "    {\"glb_bytes\": " << p.glb_bytes
            << ", \"width_bits\": " << p.data_width_bits
            << ", \"batch\": " << p.batch << ", \"objective\": \""
            << core::to_string(p.objective) << "\", \"interlayer\": "
            << (p.interlayer ? "true" : "false")
            << ", \"accesses\": " << p.accesses
            << ", \"latency_cycles\": " << p.latency_cycles
            << ", \"energy_mj\": " << p.energy_mj
            << ", \"pareto\": " << (on_front[i] ? "true" : "false");
        if (p.oracle_ran) {
          out << ", \"oracle_cost\": " << p.oracle_cost
              << ", \"oracle_lower_bound\": " << p.oracle_lower_bound
              << ", \"oracle_exact\": " << (p.oracle_exact ? "true" : "false")
              << ", \"oracle_nodes\": " << p.oracle_nodes
              << ", \"gap_vs_oracle\": " << p.gap_vs_oracle;
        }
        out << "}" << (i + 1 < points.size() ? "," : "") << '\n';
      }
      out << "  ]\n}\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "rainbow_dse: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
