// rainbow_lint: static checks on the repository's on-disk artifacts —
// model zoo files, plan files, and accelerator configurations — without
// running the planner.  Every finding is line-numbered and coded (L0xx,
// see docs/validation.md).
//
//   rainbow_lint --model models/mobilenet.model
//   rainbow_lint --all-zoo
//   rainbow_lint --plan out.plan --plan-model resnet18 --glb 256
//
// Exit codes: 0 clean, 1 findings (errors, or warnings under --strict),
// 2 usage error.
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "model/parser.hpp"
#include "model/zoo/zoo.hpp"
#include "util/units.hpp"
#include "validate/diagnostics.hpp"
#include "validate/lint.hpp"

namespace {

using namespace rainbow;

void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [inputs] [options]\n"
      << "inputs (at least one):\n"
      << "  --model <file|zoo-name>  lint a model file (repeatable)\n"
      << "  --all-zoo                lint every built-in zoo model\n"
      << "  --plan <file>            lint a plan file (repeatable)\n"
      << "  --spec-only              lint just the accelerator config\n"
      << "options:\n"
      << "  --plan-model <file|zoo-name>  cross-check plan rows against\n"
      << "                                this network's layer bounds\n"
      << "  --glb <kB>               GLB size for spec context (default 64)\n"
      << "  --width <bits>           data width for spec context (default 8)\n"
      << "  --strict                 warnings also fail (exit 1)\n"
      << "  --quiet                  print only the summary line\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> model_inputs;
  std::vector<std::string> plan_inputs;
  std::string plan_model;
  count_t glb_kb = 64;
  int width_bits = 8;
  bool all_zoo = false;
  bool spec_only = false;
  bool strict = false;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "rainbow_lint: missing value for " << flag << '\n';
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--model") {
      model_inputs.push_back(next());
    } else if (flag == "--all-zoo") {
      all_zoo = true;
    } else if (flag == "--plan") {
      plan_inputs.push_back(next());
    } else if (flag == "--plan-model") {
      plan_model = next();
    } else if (flag == "--glb") {
      glb_kb = std::strtoull(next().c_str(), nullptr, 10);
    } else if (flag == "--width") {
      width_bits = std::atoi(next().c_str());
    } else if (flag == "--spec-only") {
      spec_only = true;
    } else if (flag == "--strict") {
      strict = true;
    } else if (flag == "--quiet") {
      quiet = true;
    } else {
      usage(argv[0]);
      return flag == "--help" || flag == "-h" ? 0 : 2;
    }
  }
  if (model_inputs.empty() && plan_inputs.empty() && !all_zoo && !spec_only) {
    usage(argv[0]);
    return 2;
  }

  try {
    validate::LintOptions options;
    options.spec = arch::paper_spec(util::kib(glb_kb));
    options.spec.data_width_bits = width_bits;

    validate::ValidationReport all;
    auto run = [&](const std::string& what,
                   const validate::ValidationReport& report) {
      if (!quiet) {
        if (report.empty()) {
          std::cout << what << ": clean\n";
        } else {
          std::cout << what << ": " << report.error_count() << " error(s), "
                    << report.warning_count() << " warning(s)\n";
          for (const auto& d : report.diagnostics()) {
            std::cout << "  " << d.message() << '\n';
          }
        }
      }
      all.merge(report);
    };

    if (spec_only || !model_inputs.empty() || !plan_inputs.empty() ||
        all_zoo) {
      run("spec", validate::lint_spec(options.spec));
    }
    if (all_zoo) {
      for (const auto& net : model::zoo::all_models()) {
        run("zoo:" + net.name(),
            validate::lint_model_text(model::serialize_network(net), options));
      }
    }
    for (const auto& input : model_inputs) {
      if (std::filesystem::exists(input)) {
        run(input, validate::lint_model_file(input, options));
      } else {
        run("zoo:" + input,
            validate::lint_model_text(
                model::serialize_network(model::zoo::by_name(input)),
                options));
      }
    }
    std::optional<model::Network> cross;
    if (!plan_model.empty()) {
      cross = std::filesystem::exists(plan_model)
                  ? model::load_network(plan_model)
                  : model::zoo::by_name(plan_model);
    }
    for (const auto& input : plan_inputs) {
      run(input, validate::lint_plan_file(
                     input, cross ? &*cross : nullptr, options));
    }

    std::cout << "rainbow_lint: " << all.error_count() << " error(s), "
              << all.warning_count() << " warning(s), "
              << all.advisory_count() << " advisory(ies)\n";
    // Shared severity mapping: errors always fail, warnings fail only
    // under --strict, advisories never flip the exit code.
    return validate::strict_exit_code(all, strict);
  } catch (const std::exception& e) {
    std::cerr << "rainbow_lint: " << e.what() << '\n';
    return 2;
  }
}
